package app

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBundledSpecsValidate(t *testing.T) {
	for _, spec := range []*Spec{SocialNetwork(), HotelReservation(), Toy()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestSocialNetworkShape(t *testing.T) {
	s := SocialNetwork()
	if got := len(s.Components); got != 29 {
		t.Errorf("social components = %d, want 29 (paper §5.1)", got)
	}
	stateless, stateful := 0, 0
	for _, c := range s.Components {
		if c.Stateful {
			stateful++
		} else {
			stateless++
		}
	}
	if stateless != 23 || stateful != 6 {
		t.Errorf("stateless/stateful = %d/%d, want 23/6", stateless, stateful)
	}
	if got := len(s.APIs); got != 11 {
		t.Errorf("social APIs = %d, want 11", got)
	}
	if got := len(s.ResourcePairs()); got != 76 {
		t.Errorf("resource pairs = %d, want 76 (paper §5.1)", got)
	}
}

func TestHotelReservationShape(t *testing.T) {
	s := HotelReservation()
	if got := len(s.Components); got != 18 {
		t.Errorf("hotel components = %d, want 18", got)
	}
	if got := len(s.APIs); got != 4 {
		t.Errorf("hotel APIs = %d, want 4", got)
	}
	if got := len(s.ResourcePairs()); got != 54 {
		t.Errorf("resource pairs = %d, want 54 (paper §5.1)", got)
	}
}

func TestGroundTruthDependencies(t *testing.T) {
	s := SocialNetwork()
	compose, _ := s.API("/composePost")
	read, _ := s.API("/readTimeline")
	if !contains(compose.TouchedComponents(), "ComposePostService") {
		t.Error("/composePost must touch ComposePostService")
	}
	if contains(read.TouchedComponents(), "ComposePostService") {
		t.Error("/readTimeline must not touch ComposePostService (Figure 8)")
	}
	// /readTimeline reaches PostStorageMongoDB read path but must not
	// issue writes there (paper §5.2 program analysis).
	if !contains(read.TouchedComponents(), "PostStorageMongoDB") {
		t.Error("/readTimeline must read PostStorageMongoDB")
	}
	for _, tpl := range read.Templates {
		assertNoWrites(t, tpl.Root, "PostStorageMongoDB")
	}
}

func assertNoWrites(t *testing.T, n *PathNode, component string) {
	t.Helper()
	if n.Component == component && (n.Cost.WriteOps > 0 || n.Cost.WriteKiB > 0 || n.Cost.DiskMiB > 0) {
		t.Errorf("unexpected write cost on %s", component)
	}
	for _, c := range n.Children {
		assertNoWrites(t, c, component)
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func TestResourceMetadata(t *testing.T) {
	if CPU.StatefulOnly() || Memory.StatefulOnly() {
		t.Error("CPU/Memory apply to all components")
	}
	for _, r := range []Resource{WriteIOps, WriteTput, DiskUsage} {
		if !r.StatefulOnly() {
			t.Errorf("%s must be stateful-only", r)
		}
	}
	if CPU.String() != "cpu" || CPU.Unit() != "mcores" {
		t.Error("CPU metadata wrong")
	}
	if Resource(99).String() == "" || Resource(99).Unit() != "?" {
		t.Error("unknown resource metadata")
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{CPUms: 1, MemMiB: 2, CacheMiB: 3, WriteOps: 4, WriteKiB: 5, DiskMiB: 6}
	b := a.Scale(2)
	if b.CPUms != 2 || b.DiskMiB != 12 {
		t.Errorf("Scale = %+v", b)
	}
	c := a.Add(b)
	if c.CPUms != 3 || c.WriteKiB != 15 {
		t.Errorf("Add = %+v", c)
	}
}

// Property: Cost.Scale distributes over Add.
func TestCostScaleDistributesProperty(t *testing.T) {
	f := func(x, y float64, f8 uint8) bool {
		if !finite(x) || !finite(y) {
			return true
		}
		fac := float64(f8) / 16
		a := Cost{CPUms: x, WriteOps: y}
		b := Cost{CPUms: y, DiskMiB: x}
		lhs := a.Add(b).Scale(fac)
		rhs := a.Scale(fac).Add(b.Scale(fac))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func finite(x float64) bool { return x == x && x < 1e300 && x > -1e300 }

func TestValidateCatchesErrors(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:       "t",
			Components: []Component{{Name: "A"}, {Name: "DB", Stateful: true}},
			APIs: []API{{
				Name:      "/x",
				Templates: []Template{{Prob: 1, Root: Node("A", "op", Cost{})}},
			}},
		}
	}

	s := base()
	s.Components = append(s.Components, Component{Name: "A"})
	if err := s.Validate(); err == nil {
		t.Error("duplicate component must fail validation")
	}

	s = base()
	s.APIs = append(s.APIs, s.APIs[0])
	if err := s.Validate(); err == nil {
		t.Error("duplicate API must fail validation")
	}

	s = base()
	s.APIs[0].Templates[0].Prob = 0.5
	if err := s.Validate(); err == nil {
		t.Error("probabilities not summing to 1 must fail")
	}

	s = base()
	s.APIs[0].Templates[0].Root = Node("Ghost", "op", Cost{})
	if err := s.Validate(); err == nil {
		t.Error("undeclared component must fail")
	}

	s = base()
	s.APIs[0].Templates[0].Root = Node("A", "op", Cost{WriteOps: 1})
	if err := s.Validate(); err == nil {
		t.Error("storage cost on stateless component must fail")
	}

	s = base()
	s.APIs[0].Templates = nil
	if err := s.Validate(); err == nil {
		t.Error("API without templates must fail")
	}

	s = base()
	s.APIs[0].Templates[0].Root = nil
	if err := s.Validate(); err == nil {
		t.Error("nil template root must fail")
	}

	s = base()
	s.APIs[0].Templates[0].Prob = -1
	s.APIs[0].Templates = append(s.APIs[0].Templates, Template{Prob: 2, Root: Node("A", "op", Cost{})})
	if err := s.Validate(); err == nil {
		t.Error("negative probability must fail")
	}

	s = base()
	s.Components[0].Name = ""
	if err := s.Validate(); err == nil {
		t.Error("empty component name must fail")
	}

	s = base()
	s.Components[0].BaseCPU = -3
	if err := s.Validate(); err == nil {
		t.Error("negative base CPU must fail")
	}

	s = base()
	s.Components[1].CacheDecay = 1.5
	if err := s.Validate(); err == nil {
		t.Error("cache decay above 1 must fail")
	}

	s = base()
	s.APIs[0].PayloadCV = -0.1
	if err := s.Validate(); err == nil {
		t.Error("negative payload CV must fail")
	}
}

// TestValidateNamesOffender pins that errors in large specs are actionable:
// they carry the offending API name and template index (and the node for
// cost errors), per the topology-as-data error contract.
func TestValidateNamesOffender(t *testing.T) {
	s := &Spec{
		Name:       "t",
		Components: []Component{{Name: "A"}, {Name: "DB", Stateful: true}},
		APIs: []API{
			{Name: "/ok", Templates: []Template{{Prob: 1, Root: Node("A", "op", Cost{})}}},
			{Name: "/bad", Templates: []Template{
				{Prob: 0.5, Root: Node("A", "op", Cost{})},
				{Prob: 0.5, Root: Node("A", "op", Cost{},
					Node("DB", "insert", Cost{CPUms: -4}))},
			}},
		},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("negative cost must fail validation")
	}
	for _, want := range []string{"/bad", "template 1", "DB/insert", "cpu_ms"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	s.APIs[1].Templates[1].Root.Children = nil
	s.APIs[1].Templates[1].Prob = 0.2
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "/bad") {
		t.Errorf("probability-sum error %q does not name the API", err)
	}
}

func TestSpecAccessors(t *testing.T) {
	s := Toy()
	if _, ok := s.Component("DB"); !ok {
		t.Error("Component(DB) missing")
	}
	if _, ok := s.Component("nope"); ok {
		t.Error("unknown component resolved")
	}
	if _, ok := s.API("/read"); !ok {
		t.Error("API(/read) missing")
	}
	if _, ok := s.API("/nope"); ok {
		t.Error("unknown API resolved")
	}
	if got := len(s.APINames()); got != 2 {
		t.Errorf("APINames = %d", got)
	}
	if got := len(s.ComponentNames()); got != 3 {
		t.Errorf("ComponentNames = %d", got)
	}
	p := Pair{Component: "DB", Resource: DiskUsage}
	if p.String() != "DB/disk_usage" {
		t.Errorf("Pair.String = %q", p.String())
	}
}

func TestNodeCall(t *testing.T) {
	n := Node("A", "op", Cost{})
	n.Call(Node("B", "op", Cost{})).Call(Node("C", "op", Cost{}))
	if len(n.Children) != 2 {
		t.Fatalf("Call chaining produced %d children, want 2", len(n.Children))
	}
}
