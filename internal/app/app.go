// Package app describes API-driven microservice applications: their
// components, their user-facing API endpoints, and — per endpoint — the
// distribution of invocation paths a request may take through the component
// graph together with the resources each visit consumes.
//
// A Spec is the ground truth an application would embody in a real
// deployment. The simulator in internal/sim executes a Spec to produce the
// two artifacts DeepRest consumes: distributed traces and resource metrics.
// DeepRest itself never reads a Spec; it must recover the API → resource
// relationships from telemetry alone, which is exactly the paper's setting.
package app

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Resource enumerates the resource types tracked per component. The paper's
// prototype considers CPU and memory in all components, and additionally
// write IOps, write throughput, and disk usage in stateful components.
type Resource int

// Resource kinds, in the order they appear in the paper's Figure 12 rows.
const (
	CPU       Resource = iota // CPU utilization, millicores
	Memory                    // memory utilization, MiB
	WriteIOps                 // write operations per second
	WriteTput                 // write throughput, KiB/s
	DiskUsage                 // cumulative disk usage, MiB
)

// AllResources lists every resource kind.
var AllResources = []Resource{CPU, Memory, WriteIOps, WriteTput, DiskUsage}

// StatefulOnly reports whether the resource is only meaningful for stateful
// components (marked black in the paper's heatmaps for stateless ones).
func (r Resource) StatefulOnly() bool {
	return r == WriteIOps || r == WriteTput || r == DiskUsage
}

// String returns the short human-readable name of the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case WriteIOps:
		return "write_iops"
	case WriteTput:
		return "write_tput"
	case DiskUsage:
		return "disk_usage"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// ParseResource is the inverse of Resource.String, used when decoding
// serialized telemetry.
func ParseResource(s string) (Resource, error) {
	for _, r := range AllResources {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("app: unknown resource %q", s)
}

// ParsePair parses a "Component/resource" key.
func ParsePair(s string) (Pair, error) {
	i := strings.LastIndex(s, "/")
	if i <= 0 || i == len(s)-1 {
		return Pair{}, fmt.Errorf("app: malformed pair %q", s)
	}
	r, err := ParseResource(s[i+1:])
	if err != nil {
		return Pair{}, err
	}
	return Pair{Component: s[:i], Resource: r}, nil
}

// Unit returns the measurement unit of the resource.
func (r Resource) Unit() string {
	switch r {
	case CPU:
		return "mcores"
	case Memory:
		return "MiB"
	case WriteIOps:
		return "ops/s"
	case WriteTput:
		return "KiB/s"
	case DiskUsage:
		return "MiB"
	default:
		return "?"
	}
}

// Component is one microservice component: a container or pod that can be
// scaled independently.
type Component struct {
	// Name identifies the component, e.g. "PostStorageMongoDB".
	Name string
	// Stateful marks database-like components that additionally expose
	// write IOps, write throughput, and disk usage.
	Stateful bool
	// BaseCPU is the idle CPU consumption in millicores.
	BaseCPU float64
	// BaseMemory is the idle memory footprint in MiB.
	BaseMemory float64
	// CPUCapacity is the nominal CPU capacity in millicores; as load
	// approaches capacity, queuing inflates consumption superlinearly.
	CPUCapacity float64
	// CacheMax bounds the cache-driven memory growth in MiB. Zero
	// disables cache modelling for the component.
	CacheMax float64
	// CacheDecay is the fraction of cached memory retained per window
	// when no reads refresh it (0..1, e.g. 0.98).
	CacheDecay float64
}

// Cost is the resource footprint of one visit to one (component, operation)
// node by one request. Zero-valued fields cost nothing.
type Cost struct {
	// CPUms is CPU time consumed, in millicore-milliseconds.
	CPUms float64
	// MemMiB is the transient working-set contribution in MiB-seconds
	// (it contributes to memory in proportion to the request rate).
	MemMiB float64
	// CacheMiB is cache growth attributed to the visit (reads populate
	// caches; this is what makes memory history-dependent).
	CacheMiB float64
	// WriteOps is the number of write operations issued.
	WriteOps float64
	// WriteKiB is the number of KiB written.
	WriteKiB float64
	// DiskMiB is the persistent storage added (monotone).
	DiskMiB float64
}

// Add returns the element-wise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		CPUms:    c.CPUms + o.CPUms,
		MemMiB:   c.MemMiB + o.MemMiB,
		CacheMiB: c.CacheMiB + o.CacheMiB,
		WriteOps: c.WriteOps + o.WriteOps,
		WriteKiB: c.WriteKiB + o.WriteKiB,
		DiskMiB:  c.DiskMiB + o.DiskMiB,
	}
}

// Scale returns the cost multiplied by f.
func (c Cost) Scale(f float64) Cost {
	return Cost{
		CPUms:    c.CPUms * f,
		MemMiB:   c.MemMiB * f,
		CacheMiB: c.CacheMiB * f,
		WriteOps: c.WriteOps * f,
		WriteKiB: c.WriteKiB * f,
		DiskMiB:  c.DiskMiB * f,
	}
}

// PathNode is one node in an invocation-path template: a visit to a
// (component, operation) pair with its per-visit cost and downstream calls.
type PathNode struct {
	// Component and Operation identify the node.
	Component string
	Operation string
	// Cost is consumed by Component each time a request visits the node.
	Cost Cost
	// Children are invoked by this node, in order.
	Children []*PathNode
}

// Node constructs a PathNode; children may be appended via Call.
func Node(component, operation string, cost Cost, children ...*PathNode) *PathNode {
	return &PathNode{Component: component, Operation: operation, Cost: cost, Children: children}
}

// Call appends a child node and returns the receiver for chaining.
func (n *PathNode) Call(child *PathNode) *PathNode {
	n.Children = append(n.Children, child)
	return n
}

// Template is one possible invocation tree of an API endpoint, weighted by
// the probability a request follows it. Different payloads exercising
// different business logic (e.g. a post with or without media) are modelled
// as different templates of the same API.
type Template struct {
	// Prob is the probability a request to the API follows this tree.
	// Probabilities of an API's templates must sum to 1.
	Prob float64
	// Root is the invocation tree. Its component is the entry component.
	Root *PathNode
}

// API is one user-facing endpoint.
type API struct {
	// Name is the endpoint, e.g. "/composePost".
	Name string
	// Templates is the distribution of invocation trees.
	Templates []Template
	// PayloadCV is the coefficient of variation of per-request cost:
	// request contents scale every cost in the sampled template by a
	// random factor with mean 1 and this relative spread.
	PayloadCV float64
}

// Spec is a complete application description.
type Spec struct {
	// Name identifies the application.
	Name string
	// Components lists every component.
	Components []Component
	// APIs lists every user-facing endpoint.
	APIs []API
}

// Component returns the component with the given name.
func (s *Spec) Component(name string) (Component, bool) {
	for _, c := range s.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// API returns the API with the given name.
func (s *Spec) API(name string) (API, bool) {
	for _, a := range s.APIs {
		if a.Name == name {
			return a, true
		}
	}
	return API{}, false
}

// APINames returns the endpoint names in declaration order.
func (s *Spec) APINames() []string {
	out := make([]string, len(s.APIs))
	for i, a := range s.APIs {
		out[i] = a.Name
	}
	return out
}

// ComponentNames returns the component names in declaration order.
func (s *Spec) ComponentNames() []string {
	out := make([]string, len(s.Components))
	for i, c := range s.Components {
		out[i] = c.Name
	}
	return out
}

// ResourcePairs enumerates every (component, resource) pair the telemetry
// layer tracks for this application: CPU and memory for all components plus
// the storage resources for stateful ones. The social network yields 76
// pairs over 29 components and the hotel reservation 54 over 18, matching
// the paper's experiment setup.
func (s *Spec) ResourcePairs() []Pair {
	var out []Pair
	for _, c := range s.Components {
		out = append(out, Pair{c.Name, CPU}, Pair{c.Name, Memory})
		if c.Stateful {
			out = append(out,
				Pair{c.Name, WriteIOps},
				Pair{c.Name, WriteTput},
				Pair{c.Name, DiskUsage})
		}
	}
	return out
}

// Pair identifies one estimation target: a resource of a component.
type Pair struct {
	Component string
	Resource  Resource
}

// String renders the pair as "Component/resource".
func (p Pair) String() string { return p.Component + "/" + p.Resource.String() }

// Validate checks internal consistency of the spec: component parameters are
// finite and non-negative, template probabilities sum to 1 per API, every
// referenced component is declared, per-visit costs are non-negative, storage
// costs only land on stateful components, and no component or API shares a
// name. Errors name the offending component or API (and template index) so a
// failure in a large spec is actionable.
func (s *Spec) Validate() error {
	comps := make(map[string]Component, len(s.Components))
	for _, c := range s.Components {
		if c.Name == "" {
			return fmt.Errorf("app %s: component with empty name", s.Name)
		}
		if _, dup := comps[c.Name]; dup {
			return fmt.Errorf("app %s: duplicate component %q", s.Name, c.Name)
		}
		if err := c.validate(); err != nil {
			return fmt.Errorf("app %s: component %q: %w", s.Name, c.Name, err)
		}
		comps[c.Name] = c
	}
	seen := make(map[string]bool, len(s.APIs))
	for _, a := range s.APIs {
		if a.Name == "" {
			return fmt.Errorf("app %s: API with empty name", s.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("app %s: duplicate API %q", s.Name, a.Name)
		}
		seen[a.Name] = true
		if len(a.Templates) == 0 {
			return fmt.Errorf("app %s: API %q has no templates", s.Name, a.Name)
		}
		if a.PayloadCV < 0 || !isFinite(a.PayloadCV) {
			return fmt.Errorf("app %s: API %q has invalid payload CV %v", s.Name, a.Name, a.PayloadCV)
		}
		sum := 0.0
		for ti, t := range a.Templates {
			if t.Prob < 0 || !isFinite(t.Prob) {
				return fmt.Errorf("app %s: API %q template %d has invalid probability %v", s.Name, a.Name, ti, t.Prob)
			}
			sum += t.Prob
			if t.Root == nil {
				return fmt.Errorf("app %s: API %q template %d has nil root", s.Name, a.Name, ti)
			}
			if err := validateNode(s.Name, a.Name, ti, t.Root, comps); err != nil {
				return err
			}
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("app %s: API %q template probabilities sum to %.4f, want 1", s.Name, a.Name, sum)
		}
	}
	return nil
}

// validate checks one component's scalar parameters.
func (c Component) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"base CPU", c.BaseCPU},
		{"base memory", c.BaseMemory},
		{"CPU capacity", c.CPUCapacity},
		{"cache max", c.CacheMax},
	} {
		if f.v < 0 || !isFinite(f.v) {
			return fmt.Errorf("negative %s %v", f.name, f.v)
		}
	}
	if c.CacheDecay < 0 || c.CacheDecay > 1 || !isFinite(c.CacheDecay) {
		return fmt.Errorf("cache decay %v outside [0, 1]", c.CacheDecay)
	}
	return nil
}

func validateNode(app, api string, ti int, n *PathNode, comps map[string]Component) error {
	c, ok := comps[n.Component]
	if !ok {
		return fmt.Errorf("app %s: API %q template %d references undeclared component %q", app, api, ti, n.Component)
	}
	if field, v, ok := n.Cost.negative(); ok {
		return fmt.Errorf("app %s: API %q template %d: node %s/%s has negative %s %v",
			app, api, ti, n.Component, n.Operation, field, v)
	}
	if !c.Stateful && (n.Cost.WriteOps != 0 || n.Cost.WriteKiB != 0 || n.Cost.DiskMiB != 0) {
		return fmt.Errorf("app %s: API %q template %d puts storage cost on stateless component %q", app, api, ti, n.Component)
	}
	for _, ch := range n.Children {
		if err := validateNode(app, api, ti, ch, comps); err != nil {
			return err
		}
	}
	return nil
}

// negative returns the first invalid (negative or non-finite) cost field.
func (c Cost) negative() (field string, v float64, bad bool) {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"cpu_ms", c.CPUms},
		{"mem_mib", c.MemMiB},
		{"cache_mib", c.CacheMiB},
		{"write_ops", c.WriteOps},
		{"write_kib", c.WriteKiB},
		{"disk_mib", c.DiskMiB},
	} {
		if f.v < 0 || !isFinite(f.v) {
			return f.name, f.v, true
		}
	}
	return "", 0, false
}

// isFinite reports whether v is neither NaN nor infinite.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// TouchedComponents returns the sorted set of components any template of the
// API can visit. This is ground truth used only by tests and by evaluation
// reports — never by the estimator.
func (a API) TouchedComponents() []string {
	set := make(map[string]bool)
	var rec func(n *PathNode)
	rec = func(n *PathNode) {
		set[n.Component] = true
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, t := range a.Templates {
		rec(t.Root)
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
