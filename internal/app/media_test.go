package app

import "testing"

func TestMediaMicroservicesShape(t *testing.T) {
	s := MediaMicroservices()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	stateless, stateful := 0, 0
	for _, c := range s.Components {
		if c.Stateful {
			stateful++
		} else {
			stateless++
		}
	}
	if stateless != 14 || stateful != 5 {
		t.Errorf("stateless/stateful = %d/%d, want 14/5", stateless, stateful)
	}
	if got := len(s.APIs); got != 6 {
		t.Errorf("APIs = %d, want 6", got)
	}
	// 19 components × 2 + 5 stateful × 3 = 53 estimation targets.
	if got := len(s.ResourcePairs()); got != 53 {
		t.Errorf("resource pairs = %d, want 53", got)
	}
}

func TestMediaGroundTruth(t *testing.T) {
	s := MediaMicroservices()
	compose, _ := s.API("/composeReview")
	readPage, _ := s.API("/readMoviePage")
	if !contains(compose.TouchedComponents(), "ReviewMongoDB") {
		t.Error("/composeReview must write ReviewMongoDB")
	}
	// Reading pages must never write the review store.
	for _, tpl := range readPage.Templates {
		assertNoWrites(t, tpl.Root, "ReviewMongoDB")
	}
	mix := MediaDefaultMix()
	if len(mix) != len(s.APIs) {
		t.Errorf("default mix covers %d of %d APIs", len(mix), len(s.APIs))
	}
	for api := range mix {
		if _, ok := s.API(api); !ok {
			t.Errorf("mix references unknown API %s", api)
		}
	}
}
