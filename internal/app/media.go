package app

// MediaMicroservices returns the third DeathStarBench application — the
// movie-review service — modelled at the same fidelity as the other two
// bundled specs. The paper evaluates on the social network and hotel
// reservation only, but positions DeepRest to "serve any hosted application
// deployed in a cluster" (§3); this spec backs the generality tests.
//
// 14 stateless and 5 stateful components serve 6 API endpoints for
// browsing movie pages, posting and reading reviews, renting movies, and
// registering users.
func MediaMicroservices() *Spec {
	s := &Spec{
		Name: "media-microservices",
		Components: []Component{
			{Name: "NginxWeb", BaseCPU: 16, BaseMemory: 110, CPUCapacity: 140},
			{Name: "ComposeReviewService", BaseCPU: 9, BaseMemory: 180, CPUCapacity: 110},
			{Name: "TextService", BaseCPU: 5, BaseMemory: 130, CPUCapacity: 80},
			{Name: "UniqueIDService", BaseCPU: 4, BaseMemory: 90, CPUCapacity: 72},
			{Name: "UserService", BaseCPU: 7, BaseMemory: 150, CPUCapacity: 96},
			{Name: "MovieIDService", BaseCPU: 6, BaseMemory: 140, CPUCapacity: 88},
			{Name: "RatingService", BaseCPU: 6, BaseMemory: 140, CPUCapacity: 88},
			{Name: "MovieInfoService", BaseCPU: 8, BaseMemory: 170, CPUCapacity: 104},
			{Name: "PlotService", BaseCPU: 6, BaseMemory: 150, CPUCapacity: 88},
			{Name: "MovieReviewService", BaseCPU: 8, BaseMemory: 170, CPUCapacity: 104},
			{Name: "UserReviewService", BaseCPU: 8, BaseMemory: 170, CPUCapacity: 104},
			{Name: "ReviewStorageService", BaseCPU: 9, BaseMemory: 180, CPUCapacity: 110},
			{Name: "VideoStreamingService", BaseCPU: 12, BaseMemory: 220, CPUCapacity: 130},
			{Name: "ReviewCacheRedis", BaseCPU: 6, BaseMemory: 100, CPUCapacity: 88, CacheMax: 500, CacheDecay: 0.99},
			{Name: "ReviewMongoDB", Stateful: true, BaseCPU: 15, BaseMemory: 340, CPUCapacity: 128, CacheMax: 700, CacheDecay: 0.995},
			{Name: "MovieInfoMongoDB", Stateful: true, BaseCPU: 14, BaseMemory: 320, CPUCapacity: 120, CacheMax: 600, CacheDecay: 0.995},
			{Name: "UserMongoDB", Stateful: true, BaseCPU: 12, BaseMemory: 280, CPUCapacity: 104, CacheMax: 350, CacheDecay: 0.995},
			{Name: "RatingMongoDB", Stateful: true, BaseCPU: 12, BaseMemory: 280, CPUCapacity: 104, CacheMax: 350, CacheDecay: 0.995},
			{Name: "RentalMongoDB", Stateful: true, BaseCPU: 12, BaseMemory: 290, CPUCapacity: 104, CacheMax: 300, CacheDecay: 0.995},
		},
	}
	s.APIs = []API{
		mediaComposeReview(),
		mediaReadMoviePage(),
		mediaReadUserReviews(),
		mediaRentMovie(),
		mediaRegister(),
		mediaRateMovie(),
	}
	return s
}

// mediaComposeReview posts a movie review: the application's write path.
func mediaComposeReview() API {
	base := func(textCost float64) *PathNode {
		return Node("NginxWeb", "composeReview", Cost{CPUms: 400, MemMiB: 0.10},
			Node("ComposeReviewService", "composeReview", Cost{CPUms: 2300, MemMiB: 0.50},
				Node("UniqueIDService", "generateID", Cost{CPUms: 170, MemMiB: 0.03}),
				Node("TextService", "processText", Cost{CPUms: textCost, MemMiB: 0.16}),
				Node("UserService", "verifyUser", Cost{CPUms: 420, MemMiB: 0.10},
					Node("UserMongoDB", "find", Cost{CPUms: 620, MemMiB: 0.12, CacheMiB: 0.005})),
				Node("MovieIDService", "resolveMovie", Cost{CPUms: 380, MemMiB: 0.09},
					Node("MovieInfoMongoDB", "find", Cost{CPUms: 700, MemMiB: 0.13, CacheMiB: 0.008})),
				Node("RatingService", "recordRating", Cost{CPUms: 350, MemMiB: 0.08},
					Node("RatingMongoDB", "update", Cost{CPUms: 800, MemMiB: 0.14, WriteOps: 3, WriteKiB: 2, DiskMiB: 0.0006})),
				Node("ReviewStorageService", "storeReview", Cost{CPUms: 850, MemMiB: 0.24},
					Node("ReviewMongoDB", "insert", Cost{CPUms: 1400, MemMiB: 0.28, WriteOps: 5, WriteKiB: 10, DiskMiB: 0.009})),
				Node("MovieReviewService", "appendMovieIndex", Cost{CPUms: 520, MemMiB: 0.14},
					Node("ReviewCacheRedis", "update", Cost{CPUms: 280, MemMiB: 0.05, CacheMiB: 0.012})),
				Node("UserReviewService", "appendUserIndex", Cost{CPUms: 500, MemMiB: 0.13})))
	}
	return API{
		Name:      "/composeReview",
		PayloadCV: 0.18,
		Templates: []Template{
			{Prob: 0.65, Root: base(650)},
			{Prob: 0.35, Root: base(1100)}, // long-form reviews
		},
	}
}

// mediaReadMoviePage renders a movie page: info, plot, and recent reviews.
func mediaReadMoviePage() API {
	hit := Node("NginxWeb", "readMoviePage", Cost{CPUms: 420, MemMiB: 0.11},
		Node("MovieInfoService", "getInfo", Cost{CPUms: 900, MemMiB: 0.26},
			Node("MovieInfoMongoDB", "find", Cost{CPUms: 950, MemMiB: 0.18, CacheMiB: 0.012})),
		Node("PlotService", "getPlot", Cost{CPUms: 600, MemMiB: 0.16}),
		Node("MovieReviewService", "getRecentReviews", Cost{CPUms: 800, MemMiB: 0.24},
			Node("ReviewCacheRedis", "get", Cost{CPUms: 330, MemMiB: 0.06, CacheMiB: 0.014})))
	miss := Node("NginxWeb", "readMoviePage", Cost{CPUms: 420, MemMiB: 0.11},
		Node("MovieInfoService", "getInfo", Cost{CPUms: 950, MemMiB: 0.27},
			Node("MovieInfoMongoDB", "find", Cost{CPUms: 1000, MemMiB: 0.19, CacheMiB: 0.012})),
		Node("PlotService", "getPlot", Cost{CPUms: 620, MemMiB: 0.17}),
		Node("MovieReviewService", "getRecentReviews", Cost{CPUms: 880, MemMiB: 0.26},
			Node("ReviewStorageService", "readReviews", Cost{CPUms: 700, MemMiB: 0.20},
				Node("ReviewMongoDB", "find", Cost{CPUms: 1250, MemMiB: 0.24, CacheMiB: 0.016}))))
	return API{
		Name:      "/readMoviePage",
		PayloadCV: 0.14,
		Templates: []Template{
			{Prob: 0.6, Root: hit},
			{Prob: 0.4, Root: miss},
		},
	}
}

// mediaReadUserReviews lists a user's review history.
func mediaReadUserReviews() API {
	root := Node("NginxWeb", "readUserReviews", Cost{CPUms: 380, MemMiB: 0.10},
		Node("UserReviewService", "getUserReviews", Cost{CPUms: 900, MemMiB: 0.26},
			Node("ReviewStorageService", "readReviews", Cost{CPUms: 720, MemMiB: 0.21},
				Node("ReviewMongoDB", "find", Cost{CPUms: 1200, MemMiB: 0.23, CacheMiB: 0.015}))))
	return API{
		Name:      "/readUserReviews",
		PayloadCV: 0.12,
		Templates: []Template{{Prob: 1, Root: root}},
	}
}

// mediaRentMovie starts a rental and a streaming session.
func mediaRentMovie() API {
	root := Node("NginxWeb", "rentMovie", Cost{CPUms: 450, MemMiB: 0.12},
		Node("UserService", "verifyUser", Cost{CPUms: 430, MemMiB: 0.10},
			Node("UserMongoDB", "find", Cost{CPUms: 640, MemMiB: 0.12, CacheMiB: 0.005})),
		Node("RentalMongoDB", "insert", Cost{CPUms: 1000, MemMiB: 0.18, WriteOps: 4, WriteKiB: 4, DiskMiB: 0.002}),
		Node("VideoStreamingService", "startStream", Cost{CPUms: 2500, MemMiB: 0.80}))
	return API{
		Name:      "/rentMovie",
		PayloadCV: 0.15,
		Templates: []Template{{Prob: 1, Root: root}},
	}
}

// mediaRegister creates a user account.
func mediaRegister() API {
	root := Node("NginxWeb", "register", Cost{CPUms: 380, MemMiB: 0.09},
		Node("UserService", "register", Cost{CPUms: 1200, MemMiB: 0.28},
			Node("UserMongoDB", "insert", Cost{CPUms: 1050, MemMiB: 0.19, WriteOps: 4, WriteKiB: 3, DiskMiB: 0.0015})))
	return API{
		Name:      "/register",
		PayloadCV: 0.08,
		Templates: []Template{{Prob: 1, Root: root}},
	}
}

// mediaRateMovie records a star rating without review text.
func mediaRateMovie() API {
	root := Node("NginxWeb", "rateMovie", Cost{CPUms: 340, MemMiB: 0.08},
		Node("RatingService", "rate", Cost{CPUms: 700, MemMiB: 0.16},
			Node("RatingMongoDB", "update", Cost{CPUms: 820, MemMiB: 0.14, WriteOps: 3, WriteKiB: 2, DiskMiB: 0.0005})))
	return API{
		Name:      "/rateMovie",
		PayloadCV: 0.07,
		Templates: []Template{{Prob: 1, Root: root}},
	}
}

// MediaDefaultMix is a plausible learning-phase composition for the media
// service: read-heavy with a steady review/rating stream.
func MediaDefaultMix() map[string]float64 {
	return map[string]float64{
		"/readMoviePage":   0.45,
		"/readUserReviews": 0.12,
		"/composeReview":   0.16,
		"/rateMovie":       0.12,
		"/rentMovie":       0.10,
		"/register":        0.05,
	}
}
