package app

// HotelReservation returns the hotel reservation application modelled on
// DeathStarBench: 12 stateless and 6 stateful components serving 4 API
// endpoints for searching, getting recommendations, and reserving hotels
// (paper Figure 7 and §5.1).
func HotelReservation() *Spec {
	s := &Spec{
		Name: "hotel-reservation",
		Components: []Component{
			{Name: "FrontendService", BaseCPU: 18, BaseMemory: 130, CPUCapacity: 144},
			{Name: "SearchService", BaseCPU: 10, BaseMemory: 170, CPUCapacity: 120},
			{Name: "GeoService", BaseCPU: 8, BaseMemory: 150, CPUCapacity: 104},
			{Name: "RateService", BaseCPU: 8, BaseMemory: 150, CPUCapacity: 104},
			{Name: "RecommendService", BaseCPU: 8, BaseMemory: 160, CPUCapacity: 104},
			{Name: "ProfileService", BaseCPU: 8, BaseMemory: 170, CPUCapacity: 104},
			{Name: "ReserveService", BaseCPU: 9, BaseMemory: 170, CPUCapacity: 112},
			{Name: "UserService", BaseCPU: 7, BaseMemory: 140, CPUCapacity: 96},
			{Name: "RateMemcached", BaseCPU: 6, BaseMemory: 110, CPUCapacity: 88, CacheMax: 400, CacheDecay: 0.99},
			{Name: "ProfileMemcached", BaseCPU: 6, BaseMemory: 110, CPUCapacity: 88, CacheMax: 500, CacheDecay: 0.99},
			{Name: "ReserveMemcached", BaseCPU: 5, BaseMemory: 100, CPUCapacity: 80, CacheMax: 250, CacheDecay: 0.99},
			{Name: "ConsulAgent", BaseCPU: 5, BaseMemory: 90, CPUCapacity: 60},
			{Name: "GeoMongoDB", Stateful: true, BaseCPU: 13, BaseMemory: 290, CPUCapacity: 112, CacheMax: 400, CacheDecay: 0.995},
			{Name: "RateMongoDB", Stateful: true, BaseCPU: 13, BaseMemory: 290, CPUCapacity: 112, CacheMax: 400, CacheDecay: 0.995},
			{Name: "RecommendMongoDB", Stateful: true, BaseCPU: 12, BaseMemory: 270, CPUCapacity: 104, CacheMax: 350, CacheDecay: 0.995},
			{Name: "ProfileMongoDB", Stateful: true, BaseCPU: 13, BaseMemory: 300, CPUCapacity: 112, CacheMax: 450, CacheDecay: 0.995},
			{Name: "ReserveMongoDB", Stateful: true, BaseCPU: 14, BaseMemory: 310, CPUCapacity: 120, CacheMax: 300, CacheDecay: 0.995},
			{Name: "UserMongoDB", Stateful: true, BaseCPU: 11, BaseMemory: 260, CPUCapacity: 96, CacheMax: 250, CacheDecay: 0.995},
		},
	}
	s.APIs = []API{
		hotelSearch(),
		hotelRecommend(),
		hotelReserve(),
		hotelUser(),
	}
	return s
}

// hotelSearch finds nearby hotels with availability: geo lookup, rate
// lookup, then profile hydration.
func hotelSearch() API {
	discover := Node("ConsulAgent", "resolve", Cost{CPUms: 90, MemMiB: 0.02})
	hit := Node("FrontendService", "search", Cost{CPUms: 1450, MemMiB: 0.35},
		discover,
		Node("SearchService", "nearby", Cost{CPUms: 1700, MemMiB: 0.45},
			Node("GeoService", "nearby", Cost{CPUms: 900, MemMiB: 0.22},
				Node("GeoMongoDB", "find", Cost{CPUms: 1150, MemMiB: 0.20, CacheMiB: 0.010})),
			Node("RateService", "getRates", Cost{CPUms: 950, MemMiB: 0.24},
				Node("RateMemcached", "get", Cost{CPUms: 320, MemMiB: 0.05, CacheMiB: 0.012}))),
		Node("ProfileService", "getProfiles", Cost{CPUms: 1050, MemMiB: 0.30},
			Node("ProfileMemcached", "get", Cost{CPUms: 360, MemMiB: 0.06, CacheMiB: 0.016})))
	miss := Node("FrontendService", "search", Cost{CPUms: 1500, MemMiB: 0.36},
		discover,
		Node("SearchService", "nearby", Cost{CPUms: 1800, MemMiB: 0.48},
			Node("GeoService", "nearby", Cost{CPUms: 950, MemMiB: 0.23},
				Node("GeoMongoDB", "find", Cost{CPUms: 1200, MemMiB: 0.21, CacheMiB: 0.010})),
			Node("RateService", "getRates", Cost{CPUms: 1050, MemMiB: 0.26},
				Node("RateMongoDB", "find", Cost{CPUms: 1200, MemMiB: 0.22, CacheMiB: 0.014}))),
		Node("ProfileService", "getProfiles", Cost{CPUms: 1150, MemMiB: 0.33},
			Node("ProfileMongoDB", "find", Cost{CPUms: 1300, MemMiB: 0.24, CacheMiB: 0.018})))
	return API{
		Name:      "/search",
		PayloadCV: 0.16,
		Templates: []Template{
			{Prob: 0.60, Root: hit},
			{Prob: 0.40, Root: miss},
		},
	}
}

// hotelRecommend returns personalised hotel recommendations.
func hotelRecommend() API {
	root := Node("FrontendService", "recommend", Cost{CPUms: 1100, MemMiB: 0.28},
		Node("RecommendService", "getRecommendations", Cost{CPUms: 1600, MemMiB: 0.40},
			Node("RecommendMongoDB", "find", Cost{CPUms: 1250, MemMiB: 0.22, CacheMiB: 0.012})),
		Node("ProfileService", "getProfiles", Cost{CPUms: 1000, MemMiB: 0.28},
			Node("ProfileMemcached", "get", Cost{CPUms: 350, MemMiB: 0.06, CacheMiB: 0.014})))
	return API{
		Name:      "/recommend",
		PayloadCV: 0.12,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// hotelReserve books a room: the write path of the application.
func hotelReserve() API {
	root := Node("FrontendService", "reserve", Cost{CPUms: 1300, MemMiB: 0.32},
		Node("UserService", "checkUser", Cost{CPUms: 700, MemMiB: 0.16},
			Node("UserMongoDB", "find", Cost{CPUms: 800, MemMiB: 0.15, CacheMiB: 0.006})),
		Node("ReserveService", "makeReservation", Cost{CPUms: 1500, MemMiB: 0.38},
			Node("ReserveMemcached", "checkAvailability", Cost{CPUms: 330, MemMiB: 0.06, CacheMiB: 0.008}),
			Node("ReserveMongoDB", "insert", Cost{CPUms: 1400, MemMiB: 0.26, WriteOps: 5, WriteKiB: 8, DiskMiB: 0.005})))
	return API{
		Name:      "/reserve",
		PayloadCV: 0.10,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// hotelUser authenticates a user.
func hotelUser() API {
	root := Node("FrontendService", "user", Cost{CPUms: 800, MemMiB: 0.18},
		Node("UserService", "login", Cost{CPUms: 900, MemMiB: 0.20},
			Node("UserMongoDB", "find", Cost{CPUms: 780, MemMiB: 0.15, CacheMiB: 0.006})))
	return API{
		Name:      "/user",
		PayloadCV: 0.08,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// Toy returns a deliberately tiny three-component application used by unit
// tests and the quickstart example: a gateway, one service, and one
// database, with a read API and a write API whose resource footprints are
// easy to reason about by hand.
func Toy() *Spec {
	s := &Spec{
		Name: "toy",
		Components: []Component{
			{Name: "Gateway", BaseCPU: 5, BaseMemory: 50, CPUCapacity: 40},
			{Name: "Service", BaseCPU: 5, BaseMemory: 80, CPUCapacity: 48},
			{Name: "DB", Stateful: true, BaseCPU: 8, BaseMemory: 150, CPUCapacity: 60, CacheMax: 200, CacheDecay: 0.99},
		},
		APIs: []API{
			{
				Name:      "/read",
				PayloadCV: 0.10,
				Templates: []Template{
					{Prob: 1.0, Root: Node("Gateway", "read", Cost{CPUms: 300, MemMiB: 0.08},
						Node("Service", "read", Cost{CPUms: 900, MemMiB: 0.25},
							Node("DB", "find", Cost{CPUms: 1100, MemMiB: 0.20, CacheMiB: 0.010})))},
				},
			},
			{
				Name:      "/write",
				PayloadCV: 0.10,
				Templates: []Template{
					{Prob: 1.0, Root: Node("Gateway", "write", Cost{CPUms: 320, MemMiB: 0.08},
						Node("Service", "write", Cost{CPUms: 1000, MemMiB: 0.28},
							Node("DB", "insert", Cost{CPUms: 1400, MemMiB: 0.24, WriteOps: 5, WriteKiB: 10, DiskMiB: 0.008})))},
				},
			},
		},
	}
	return s
}
