package app

// SocialNetwork returns the social network application modelled on
// DeathStarBench: 23 stateless and 6 stateful components collectively
// serving 11 user-facing API endpoints for publishing, reading, and reacting
// to social media posts (paper Figure 1 and §5.1).
//
// The per-visit costs encode the ground-truth API → resource relationships
// the paper's evaluation revolves around, e.g. /composePost drives CPU in
// ComposePostService and write IOps / write throughput / disk usage in
// PostStorageMongoDB, while /readTimeline touches PostStorageMongoDB's CPU
// but none of its write resources (Figures 10, 11, 22).
func SocialNetwork() *Spec {
	s := &Spec{
		Name: "social-network",
		Components: []Component{
			// Entry webservers.
			{Name: "FrontendNGINX", BaseCPU: 20, BaseMemory: 120, CPUCapacity: 160},
			{Name: "MediaNGINX", BaseCPU: 12, BaseMemory: 100, CPUCapacity: 120},
			// Stateless business-logic services.
			{Name: "UserService", BaseCPU: 8, BaseMemory: 160, CPUCapacity: 100},
			{Name: "MediaService", BaseCPU: 8, BaseMemory: 180, CPUCapacity: 100},
			{Name: "SocialGraphService", BaseCPU: 8, BaseMemory: 170, CPUCapacity: 100},
			{Name: "ComposePostService", BaseCPU: 10, BaseMemory: 200, CPUCapacity: 120},
			{Name: "TextService", BaseCPU: 6, BaseMemory: 140, CPUCapacity: 80},
			{Name: "UserMentionService", BaseCPU: 5, BaseMemory: 130, CPUCapacity: 80},
			{Name: "UrlShortenService", BaseCPU: 5, BaseMemory: 130, CPUCapacity: 80},
			{Name: "UniqueIDService", BaseCPU: 4, BaseMemory: 90, CPUCapacity: 80},
			{Name: "PostStorageService", BaseCPU: 9, BaseMemory: 190, CPUCapacity: 120},
			{Name: "HomeTimelineService", BaseCPU: 9, BaseMemory: 180, CPUCapacity: 112},
			{Name: "UserTimelineService", BaseCPU: 9, BaseMemory: 180, CPUCapacity: 112},
			{Name: "WriteHomeTimelineService", BaseCPU: 7, BaseMemory: 150, CPUCapacity: 96},
			{Name: "WriteHomeTimelineRabbitMQ", BaseCPU: 10, BaseMemory: 220, CPUCapacity: 88},
			{Name: "SearchService", BaseCPU: 6, BaseMemory: 150, CPUCapacity: 88},
			// In-memory caches: stateless in the paper's accounting (no
			// write IOps / throughput / disk tracked), but they carry
			// cache-driven memory behaviour.
			{Name: "ComposePostRedis", BaseCPU: 6, BaseMemory: 90, CPUCapacity: 88, CacheMax: 300, CacheDecay: 0.985},
			{Name: "HomeTimelineRedis", BaseCPU: 8, BaseMemory: 110, CPUCapacity: 104, CacheMax: 600, CacheDecay: 0.99},
			{Name: "SocialGraphRedis", BaseCPU: 6, BaseMemory: 100, CPUCapacity: 88, CacheMax: 400, CacheDecay: 0.99},
			{Name: "UserTimelineRedis", BaseCPU: 8, BaseMemory: 110, CPUCapacity: 104, CacheMax: 600, CacheDecay: 0.99},
			{Name: "PostStorageMemcached", BaseCPU: 7, BaseMemory: 120, CPUCapacity: 96, CacheMax: 700, CacheDecay: 0.99},
			{Name: "MediaMemcached", BaseCPU: 6, BaseMemory: 110, CPUCapacity: 88, CacheMax: 800, CacheDecay: 0.985},
			{Name: "UserMemcached", BaseCPU: 5, BaseMemory: 100, CPUCapacity: 80, CacheMax: 300, CacheDecay: 0.99},
			// Stateful MongoDB stores.
			{Name: "UserMongoDB", Stateful: true, BaseCPU: 15, BaseMemory: 300, CPUCapacity: 120, CacheMax: 500, CacheDecay: 0.995},
			{Name: "SocialGraphMongoDB", Stateful: true, BaseCPU: 15, BaseMemory: 320, CPUCapacity: 120, CacheMax: 500, CacheDecay: 0.995},
			{Name: "UrlShortenMongoDB", Stateful: true, BaseCPU: 12, BaseMemory: 280, CPUCapacity: 104, CacheMax: 300, CacheDecay: 0.995},
			{Name: "PostStorageMongoDB", Stateful: true, BaseCPU: 18, BaseMemory: 380, CPUCapacity: 144, CacheMax: 900, CacheDecay: 0.995},
			{Name: "UserTimelineMongoDB", Stateful: true, BaseCPU: 16, BaseMemory: 340, CPUCapacity: 128, CacheMax: 700, CacheDecay: 0.995},
			{Name: "MediaMongoDB", Stateful: true, BaseCPU: 16, BaseMemory: 360, CPUCapacity: 128, CacheMax: 800, CacheDecay: 0.995},
		},
	}
	s.APIs = []API{
		composePost(),
		readTimeline(),
		readHomeTimeline(),
		uploadMedia(),
		getMedia(),
		registerUser(),
		login(),
		follow(),
		unfollow(),
		readPost(),
		searchUser(),
	}
	return s
}

// composePost publishes a new post. Three payload variants: plain text,
// text with URLs and user mentions, and text referencing uploaded media.
func composePost() API {
	// The shared fan-out every compose request performs after the
	// front-end hands it to ComposePostService.
	storageWrites := func(mediaRef bool) []*PathNode {
		post := Node("PostStorageService", "storePost", Cost{CPUms: 900, MemMiB: 0.25},
			Node("PostStorageMongoDB", "insert", Cost{CPUms: 1500, MemMiB: 0.30, WriteOps: 6, WriteKiB: 14, DiskMiB: 0.012}))
		utl := Node("UserTimelineService", "writeUserTimeline", Cost{CPUms: 700, MemMiB: 0.20},
			Node("UserTimelineMongoDB", "update", Cost{CPUms: 1100, MemMiB: 0.22, WriteOps: 4, WriteKiB: 6, DiskMiB: 0.004}))
		htl := Node("WriteHomeTimelineService", "fanoutHomeTimelines", Cost{CPUms: 1200, MemMiB: 0.30},
			Node("SocialGraphService", "getFollowers", Cost{CPUms: 650, MemMiB: 0.18},
				Node("SocialGraphRedis", "get", Cost{CPUms: 260, MemMiB: 0.05, CacheMiB: 0.010})),
			Node("HomeTimelineRedis", "update", Cost{CPUms: 520, MemMiB: 0.10, CacheMiB: 0.018}))
		mq := Node("WriteHomeTimelineRabbitMQ", "enqueue", Cost{CPUms: 330, MemMiB: 0.12})
		nodes := []*PathNode{post, utl, mq, htl}
		if mediaRef {
			media := Node("MediaService", "composeMedia", Cost{CPUms: 800, MemMiB: 0.35},
				Node("MediaMongoDB", "linkMedia", Cost{CPUms: 700, MemMiB: 0.15, WriteOps: 2, WriteKiB: 3, DiskMiB: 0.001}))
			nodes = append([]*PathNode{media}, nodes...)
		}
		return nodes
	}

	base := func(extra []*PathNode, mediaRef bool) *PathNode {
		compose := Node("ComposePostService", "composePost", Cost{CPUms: 2600, MemMiB: 0.55},
			Node("UniqueIDService", "generateID", Cost{CPUms: 180, MemMiB: 0.03}),
			Node("UserService", "verifyUser", Cost{CPUms: 420, MemMiB: 0.10},
				Node("UserMemcached", "get", Cost{CPUms: 150, MemMiB: 0.02, CacheMiB: 0.004})),
			Node("ComposePostRedis", "stageState", Cost{CPUms: 300, MemMiB: 0.06, CacheMiB: 0.008}),
		)
		compose.Children = append(compose.Children, extra...)
		compose.Children = append(compose.Children, storageWrites(mediaRef)...)
		return Node("FrontendNGINX", "composePost", Cost{CPUms: 420, MemMiB: 0.10}, compose)
	}

	textPlain := Node("TextService", "processText", Cost{CPUms: 700, MemMiB: 0.16})
	textRich := Node("TextService", "processText", Cost{CPUms: 950, MemMiB: 0.20},
		Node("UserMentionService", "resolveMentions", Cost{CPUms: 520, MemMiB: 0.12},
			Node("UserMongoDB", "find", Cost{CPUms: 620, MemMiB: 0.12, CacheMiB: 0.006})),
		Node("UrlShortenService", "shortenUrls", Cost{CPUms: 480, MemMiB: 0.10},
			Node("UrlShortenMongoDB", "insert", Cost{CPUms: 760, MemMiB: 0.12, WriteOps: 2, WriteKiB: 2, DiskMiB: 0.0008})))
	textMedia := Node("TextService", "processText", Cost{CPUms: 760, MemMiB: 0.17})

	return API{
		Name:      "/composePost",
		PayloadCV: 0.18,
		Templates: []Template{
			{Prob: 0.50, Root: base([]*PathNode{textPlain}, false)},
			{Prob: 0.30, Root: base([]*PathNode{textRich}, false)},
			{Prob: 0.20, Root: base([]*PathNode{textMedia}, true)},
		},
	}
}

// readTimeline reads a user's own timeline (the paper's /readTimeline,
// Figure 3): it never touches the write path of PostStorageMongoDB, only
// its read CPU.
func readTimeline() API {
	hit := Node("FrontendNGINX", "readTimeline", Cost{CPUms: 360, MemMiB: 0.09},
		Node("UserTimelineService", "readTimeline", Cost{CPUms: 1300, MemMiB: 0.40},
			Node("UserTimelineRedis", "get", Cost{CPUms: 420, MemMiB: 0.08, CacheMiB: 0.012}),
			Node("PostStorageService", "getPosts", Cost{CPUms: 980, MemMiB: 0.34},
				Node("PostStorageMemcached", "get", Cost{CPUms: 380, MemMiB: 0.07, CacheMiB: 0.016}))))
	miss := Node("FrontendNGINX", "readTimeline", Cost{CPUms: 360, MemMiB: 0.09},
		Node("UserTimelineService", "readTimeline", Cost{CPUms: 1450, MemMiB: 0.44},
			Node("UserTimelineMongoDB", "find", Cost{CPUms: 1250, MemMiB: 0.26, CacheMiB: 0.014}),
			Node("PostStorageService", "getPosts", Cost{CPUms: 1050, MemMiB: 0.36},
				Node("PostStorageMongoDB", "find", Cost{CPUms: 1600, MemMiB: 0.30, CacheMiB: 0.020}))))
	return API{
		Name:      "/readTimeline",
		PayloadCV: 0.14,
		Templates: []Template{
			{Prob: 0.55, Root: hit},
			{Prob: 0.45, Root: miss},
		},
	}
}

// readHomeTimeline reads the aggregated timeline of followed users.
func readHomeTimeline() API {
	hit := Node("FrontendNGINX", "readHomeTimeline", Cost{CPUms: 360, MemMiB: 0.09},
		Node("HomeTimelineService", "readHomeTimeline", Cost{CPUms: 1350, MemMiB: 0.42},
			Node("HomeTimelineRedis", "get", Cost{CPUms: 470, MemMiB: 0.09, CacheMiB: 0.014}),
			Node("PostStorageService", "getPosts", Cost{CPUms: 1000, MemMiB: 0.35},
				Node("PostStorageMemcached", "get", Cost{CPUms: 390, MemMiB: 0.07, CacheMiB: 0.016}))))
	miss := Node("FrontendNGINX", "readHomeTimeline", Cost{CPUms: 360, MemMiB: 0.09},
		Node("HomeTimelineService", "readHomeTimeline", Cost{CPUms: 1500, MemMiB: 0.46},
			Node("HomeTimelineRedis", "get", Cost{CPUms: 470, MemMiB: 0.09, CacheMiB: 0.014}),
			Node("PostStorageService", "getPosts", Cost{CPUms: 1100, MemMiB: 0.37},
				Node("PostStorageMongoDB", "find", Cost{CPUms: 1700, MemMiB: 0.32, CacheMiB: 0.022}))))
	return API{
		Name:      "/readHomeTimeline",
		PayloadCV: 0.14,
		Templates: []Template{
			{Prob: 0.60, Root: hit},
			{Prob: 0.40, Root: miss},
		},
	}
}

// uploadMedia stores a photo; it is the only API that grows MediaMongoDB's
// disk (Figure 22: MediaMongoDB memory is affected only by /uploadMedia in
// the paper's learned masks; here the write resources are exclusive to it).
func uploadMedia() API {
	small := Node("MediaNGINX", "uploadMedia", Cost{CPUms: 900, MemMiB: 0.80},
		Node("MediaService", "storeMedia", Cost{CPUms: 1400, MemMiB: 1.00},
			Node("MediaMongoDB", "store", Cost{CPUms: 2100, MemMiB: 0.80, CacheMiB: 0.09, WriteOps: 10, WriteKiB: 220, DiskMiB: 0.22})))
	large := Node("MediaNGINX", "uploadMedia", Cost{CPUms: 1500, MemMiB: 1.40},
		Node("MediaService", "storeMedia", Cost{CPUms: 2300, MemMiB: 1.70},
			Node("MediaMongoDB", "store", Cost{CPUms: 3400, MemMiB: 1.30, CacheMiB: 0.28, WriteOps: 18, WriteKiB: 760, DiskMiB: 0.75})))
	return API{
		Name:      "/uploadMedia",
		PayloadCV: 0.30,
		Templates: []Template{
			{Prob: 0.70, Root: small},
			{Prob: 0.30, Root: large},
		},
	}
}

// getMedia fetches a photo, usually from cache.
func getMedia() API {
	hit := Node("MediaNGINX", "getMedia", Cost{CPUms: 650, MemMiB: 0.50},
		Node("MediaService", "getMedia", Cost{CPUms: 800, MemMiB: 0.60},
			Node("MediaMemcached", "get", Cost{CPUms: 420, MemMiB: 0.12, CacheMiB: 0.05})))
	miss := Node("MediaNGINX", "getMedia", Cost{CPUms: 700, MemMiB: 0.55},
		Node("MediaService", "getMedia", Cost{CPUms: 950, MemMiB: 0.70},
			Node("MediaMongoDB", "find", Cost{CPUms: 1900, MemMiB: 0.60, CacheMiB: 0.08})))
	return API{
		Name:      "/getMedia",
		PayloadCV: 0.25,
		Templates: []Template{
			{Prob: 0.75, Root: hit},
			{Prob: 0.25, Root: miss},
		},
	}
}

// registerUser creates an account and a social-graph node.
func registerUser() API {
	root := Node("FrontendNGINX", "register", Cost{CPUms: 380, MemMiB: 0.09},
		Node("UserService", "register", Cost{CPUms: 1300, MemMiB: 0.30},
			Node("UserMongoDB", "insert", Cost{CPUms: 1100, MemMiB: 0.20, WriteOps: 4, WriteKiB: 4, DiskMiB: 0.002})),
		Node("SocialGraphService", "insertUser", Cost{CPUms: 600, MemMiB: 0.15},
			Node("SocialGraphMongoDB", "insert", Cost{CPUms: 900, MemMiB: 0.16, WriteOps: 3, WriteKiB: 2, DiskMiB: 0.001})))
	return API{
		Name:      "/register",
		PayloadCV: 0.10,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// login authenticates a user, usually hitting the user cache.
func login() API {
	hit := Node("FrontendNGINX", "login", Cost{CPUms: 340, MemMiB: 0.08},
		Node("UserService", "login", Cost{CPUms: 800, MemMiB: 0.18},
			Node("UserMemcached", "get", Cost{CPUms: 190, MemMiB: 0.03, CacheMiB: 0.004})))
	miss := Node("FrontendNGINX", "login", Cost{CPUms: 340, MemMiB: 0.08},
		Node("UserService", "login", Cost{CPUms: 900, MemMiB: 0.20},
			Node("UserMongoDB", "find", Cost{CPUms: 700, MemMiB: 0.14, CacheMiB: 0.005})))
	return API{
		Name:      "/login",
		PayloadCV: 0.08,
		Templates: []Template{
			{Prob: 0.70, Root: hit},
			{Prob: 0.30, Root: miss},
		},
	}
}

// follow adds a social-graph edge.
func follow() API {
	root := Node("FrontendNGINX", "follow", Cost{CPUms: 350, MemMiB: 0.08},
		Node("SocialGraphService", "follow", Cost{CPUms: 900, MemMiB: 0.20},
			Node("SocialGraphMongoDB", "update", Cost{CPUms: 1000, MemMiB: 0.18, WriteOps: 3, WriteKiB: 2, DiskMiB: 0.0008}),
			Node("SocialGraphRedis", "update", Cost{CPUms: 300, MemMiB: 0.05, CacheMiB: 0.006})))
	return API{
		Name:      "/follow",
		PayloadCV: 0.06,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// unfollow removes a social-graph edge.
func unfollow() API {
	root := Node("FrontendNGINX", "unfollow", Cost{CPUms: 350, MemMiB: 0.08},
		Node("SocialGraphService", "unfollow", Cost{CPUms: 880, MemMiB: 0.20},
			Node("SocialGraphMongoDB", "update", Cost{CPUms: 980, MemMiB: 0.18, WriteOps: 3, WriteKiB: 2, DiskMiB: 0.0004}),
			Node("SocialGraphRedis", "update", Cost{CPUms: 300, MemMiB: 0.05, CacheMiB: 0.006})))
	return API{
		Name:      "/unfollow",
		PayloadCV: 0.06,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}

// readPost fetches a single post by ID.
func readPost() API {
	hit := Node("FrontendNGINX", "readPost", Cost{CPUms: 330, MemMiB: 0.08},
		Node("PostStorageService", "readPost", Cost{CPUms: 750, MemMiB: 0.22},
			Node("PostStorageMemcached", "get", Cost{CPUms: 340, MemMiB: 0.06, CacheMiB: 0.012})))
	miss := Node("FrontendNGINX", "readPost", Cost{CPUms: 330, MemMiB: 0.08},
		Node("PostStorageService", "readPost", Cost{CPUms: 860, MemMiB: 0.26},
			Node("PostStorageMongoDB", "find", Cost{CPUms: 1350, MemMiB: 0.26, CacheMiB: 0.018})))
	return API{
		Name:      "/readPost",
		PayloadCV: 0.10,
		Templates: []Template{
			{Prob: 0.65, Root: hit},
			{Prob: 0.35, Root: miss},
		},
	}
}

// searchUser looks up accounts by name.
func searchUser() API {
	root := Node("FrontendNGINX", "searchUser", Cost{CPUms: 360, MemMiB: 0.09},
		Node("SearchService", "search", Cost{CPUms: 1500, MemMiB: 0.40},
			Node("UserService", "lookup", Cost{CPUms: 600, MemMiB: 0.14},
				Node("UserMongoDB", "find", Cost{CPUms: 850, MemMiB: 0.16, CacheMiB: 0.008}))))
	return API{
		Name:      "/searchUser",
		PayloadCV: 0.12,
		Templates: []Template{{Prob: 1.0, Root: root}},
	}
}
