package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eval"
)

func TestShallowLinearRecoversLinearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 300, 5
	x := make([][]float64, n)
	y := make([]float64, n)
	w := []float64{2, -1, 0.5, 0, 3}
	for i := range x {
		x[i] = make([]float64, d)
		y[i] = 7 // intercept
		for j := range x[i] {
			x[i][j] = rng.Float64()
			y[i] += w[j] * x[i][j]
		}
		y[i] += 0.01 * rng.NormFloat64()
	}
	s, err := TrainShallow(ShallowLinear, x, y, DefaultShallowConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := s.Predict(x)
	if mape := eval.MAPE(pred, y); mape > 1 {
		t.Errorf("linear in-sample MAPE = %.3f%%", mape)
	}
	if s.Kind() != ShallowLinear {
		t.Error("Kind mismatch")
	}
}

func TestShallowPolynomialBeatsLinearOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, d := 400, 6
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		// Strongly quadratic target: y = 10·x0² + x1.
		y[i] = 10*x[i][0]*x[i][0] + x[i][1] + 0.01*rng.NormFloat64()
	}
	lin, err := TrainShallow(ShallowLinear, x, y, DefaultShallowConfig())
	if err != nil {
		t.Fatal(err)
	}
	poly, err := TrainShallow(ShallowPolynomial, x, y, DefaultShallowConfig())
	if err != nil {
		t.Fatal(err)
	}
	linErr := eval.MAPE(lin.Predict(x), y)
	polyErr := eval.MAPE(poly.Predict(x), y)
	t.Logf("linear=%.2f%% polynomial=%.2f%%", linErr, polyErr)
	if polyErr >= linErr {
		t.Errorf("polynomial (%.2f%%) should beat linear (%.2f%%) on a quadratic target", polyErr, linErr)
	}
	if polyErr > 3 {
		t.Errorf("polynomial in-sample MAPE = %.2f%%", polyErr)
	}
}

func TestShallowValidation(t *testing.T) {
	if _, err := TrainShallow(ShallowLinear, nil, nil, DefaultShallowConfig()); err == nil {
		t.Error("empty data must fail")
	}
	if _, err := TrainShallow(ShallowLinear, [][]float64{{1}}, []float64{1, 2}, DefaultShallowConfig()); err == nil {
		t.Error("misaligned data must fail")
	}
}

func TestShallowPredictNonNegative(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{2, 1, 0}
	s, err := TrainShallow(ShallowLinear, x, y, DefaultShallowConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := s.Predict([][]float64{{10}})
	if pred[0] < 0 {
		t.Errorf("prediction %v should be clamped at 0 (utilizations are non-negative)", pred[0])
	}
}

func TestTopCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 5 * x[i][2] // only feature 2 matters
	}
	top := topCorrelated(x, y, 1)
	if len(top) != 1 || top[0] != 2 {
		t.Errorf("topCorrelated = %v, want [2]", top)
	}
	if got := topCorrelated(x, y, 99); len(got) != 3 {
		t.Errorf("k beyond dim should clamp: %v", got)
	}
}

func TestShallowKindString(t *testing.T) {
	if ShallowLinear.String() != "linear" || ShallowPolynomial.String() != "polynomial" {
		t.Error("kind names wrong")
	}
	if ShallowKind(9).String() == "" {
		t.Error("unknown kind must still render")
	}
}

// The in-sample error decreases with model capacity; ridge keeps the
// polynomial from degenerating even with collinear inputs.
func TestShallowCollinearStability(t *testing.T) {
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := float64(i) / float64(n)
		x[i] = []float64{v, v, v} // perfectly collinear
		y[i] = 3 * v
	}
	s, err := TrainShallow(ShallowPolynomial, x, y, DefaultShallowConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := s.Predict(x)
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			t.Fatal("unstable prediction on collinear input")
		}
	}
}
