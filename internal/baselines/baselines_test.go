package baselines

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func TestSimpleScalingFactors(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: {10, 20, 30}} // mean 20
	totals := []float64{100, 200, 300}               // mean 200
	s, err := TrainSimpleScaling(usage, totals)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate(p, []float64{400, 100})
	if err != nil {
		t.Fatal(err)
	}
	// 400/200 × 20 = 40; 100/200 × 20 = 10.
	if math.Abs(est[0]-40) > 1e-9 || math.Abs(est[1]-10) > 1e-9 {
		t.Errorf("Estimate = %v", est)
	}
	if _, err := s.Estimate(app.Pair{Component: "ghost"}, totals); err == nil {
		t.Error("unknown pair must error")
	}
}

func TestSimpleScalingValidation(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: {1}}
	if _, err := TrainSimpleScaling(usage, nil); err == nil {
		t.Error("empty traffic must fail")
	}
	if _, err := TrainSimpleScaling(usage, []float64{0, 0}); err == nil {
		t.Error("zero traffic must fail")
	}
}

func TestSimpleScalingDiskGrowth(t *testing.T) {
	p := app.Pair{Component: "DB", Resource: app.DiskUsage}
	// Disk grows 2 MiB/window, ends at 108.
	usage := map[app.Pair][]float64{p: {100, 102, 104, 106, 108}}
	totals := []float64{10, 10, 10, 10, 10}
	s, err := TrainSimpleScaling(usage, totals)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := s.Estimate(p, []float64{10, 10})
	// Growth continues from the last observed value at factor 1.
	if math.Abs(est[0]-110) > 1e-9 || math.Abs(est[1]-112) > 1e-9 {
		t.Errorf("disk estimate = %v", est)
	}
	// Doubled traffic doubles the growth rate.
	est2, _ := s.Estimate(p, []float64{20})
	if math.Abs(est2[0]-112) > 1e-9 {
		t.Errorf("scaled disk estimate = %v", est2)
	}
}

func batchOf(component, op string, count int) trace.Batch {
	return trace.Batch{
		Trace: trace.Trace{API: "/x", Root: trace.NewSpan(component, op)},
		Count: count,
	}
}

func TestComponentAwareFactors(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	q := app.Pair{Component: "B", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: {10, 10}, q: {40, 40}}
	train := [][]trace.Batch{
		{batchOf("A", "op", 100), batchOf("B", "op", 50)},
		{batchOf("A", "op", 100), batchOf("B", "op", 50)},
	}
	c, err := TrainComponentAware(usage, train)
	if err != nil {
		t.Fatal(err)
	}
	// Query: A gets 2× its mean invocations, B gets 0.
	query := [][]trace.Batch{{batchOf("A", "op", 200)}}
	estA, err := c.Estimate(p, query)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(estA[0]-20) > 1e-9 {
		t.Errorf("A estimate = %v, want 20", estA[0])
	}
	estB, _ := c.Estimate(q, query)
	if estB[0] != 0 {
		t.Errorf("B estimate = %v, want 0", estB[0])
	}
	if _, err := c.Estimate(app.Pair{Component: "ghost"}, query); err == nil {
		t.Error("unknown pair must error")
	}
	if _, err := TrainComponentAware(usage, nil); err == nil {
		t.Error("no traces must fail")
	}
}

func TestComponentAwareCountsSpans(t *testing.T) {
	// Nested spans: one request visiting A→B twice counts B twice.
	root := trace.NewSpan("A", "op")
	root.Child("B", "op1")
	root.Child("B", "op2")
	counts := CountInvocations([][]trace.Batch{{{Trace: trace.Trace{API: "/x", Root: root}, Count: 3}}})
	if counts[0]["A"] != 3 || counts[0]["B"] != 6 {
		t.Errorf("counts = %v", counts[0])
	}
}

func TestResourceAwareForecastsPeriodicity(t *testing.T) {
	// Strongly periodic utilization: the forecaster must reproduce the
	// daily pattern for the next day.
	wpd := 24
	days := 4
	p := app.Pair{Component: "A", Resource: app.CPU}
	series := make([]float64, wpd*days)
	for i := range series {
		series[i] = 50 + 40*math.Sin(2*math.Pi*float64(i%wpd)/float64(wpd))
	}
	cfg := DefaultRAConfig()
	cfg.Epochs = 40
	cfg.ChunkLen = 24
	r, err := TrainResourceAware(map[app.Pair][]float64{p: series}, wpd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := r.Forecast(p, wpd)
	if err != nil {
		t.Fatal(err)
	}
	mape := eval.MAPE(fc, series[:wpd])
	t.Logf("periodic forecast MAPE: %.2f%%", mape)
	if mape > 15 {
		t.Errorf("forecast MAPE %.2f%% too high for a perfectly periodic series", mape)
	}
}

func TestResourceAwareIgnoresQueries(t *testing.T) {
	// The forecast depends only on history: two different "queries" see
	// the same forecast (this is the baseline's defining weakness).
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 4)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	cfg := DefaultRAConfig()
	cfg.Epochs = 4
	r, err := TrainResourceAware(testutil.FocusPairs(run.Usage, p), testutil.ToyDay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Forecast(p, 10)
	b, _ := r.Forecast(p, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forecast must be deterministic")
		}
	}
	if _, err := r.Forecast(app.Pair{Component: "ghost"}, 5); err == nil {
		t.Error("unknown pair must error")
	}
}

func TestResourceAwareValidation(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	if _, err := TrainResourceAware(map[app.Pair][]float64{p: make([]float64, 10)}, 24, DefaultRAConfig()); err == nil {
		t.Error("too-short series must fail")
	}
	if _, err := TrainResourceAware(map[app.Pair][]float64{p: make([]float64, 100)}, 0, DefaultRAConfig()); err == nil {
		t.Error("zero windowsPerDay must fail")
	}
}

func TestResourceAwareDiskForecastMonotone(t *testing.T) {
	wpd := 24
	p := app.Pair{Component: "DB", Resource: app.DiskUsage}
	series := make([]float64, wpd*3)
	for i := range series {
		series[i] = 1000 + 3*float64(i)
	}
	cfg := DefaultRAConfig()
	cfg.Epochs = 30
	r, err := TrainResourceAware(map[app.Pair][]float64{p: series}, wpd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := r.Forecast(p, wpd)
	if fc[0] < series[len(series)-1]-10 {
		t.Errorf("disk forecast %v fell below last observation %v", fc[0], series[len(series)-1])
	}
	growth := fc[len(fc)-1] - fc[0]
	want := 3 * float64(wpd-1)
	if math.Abs(growth-want) > 0.5*want {
		t.Errorf("disk growth forecast %v, want ≈%v", growth, want)
	}
}
