package baselines

import (
	"fmt"
	"math"
	"sort"
)

// Shallow regression models over the trace features, reproducing the
// paper's §3 motivation for deep models: with shallow learning "the
// estimation of some resources has higher accuracy when using, e.g., a
// linear function, while the others may perform better with, e.g., a
// polynomial function" — forcing per-resource model selection that DNNs
// avoid. Both learners here are closed-form ridge regressions; the
// polynomial variant adds pairwise interaction and square terms over the
// most relevant features.

// ShallowKind selects the hypothesis class.
type ShallowKind int

// Available shallow hypothesis classes.
const (
	ShallowLinear ShallowKind = iota
	ShallowPolynomial
)

// String names the kind.
func (k ShallowKind) String() string {
	switch k {
	case ShallowLinear:
		return "linear"
	case ShallowPolynomial:
		return "polynomial"
	default:
		return fmt.Sprintf("shallow(%d)", int(k))
	}
}

// Shallow is a fitted shallow regressor for one target series.
type Shallow struct {
	kind ShallowKind
	// coef is [intercept, weights...] over the expanded feature vector.
	coef []float64
	// topIdx selects the raw features used by the polynomial expansion.
	topIdx []int
}

// ShallowConfig tunes the fit.
type ShallowConfig struct {
	// Ridge is the L2 regulariser (default 1e-2).
	Ridge float64
	// PolyTopK bounds how many raw features feed the polynomial
	// expansion, chosen by absolute correlation with the target
	// (default 8; the expansion is O(K²)).
	PolyTopK int
}

// DefaultShallowConfig returns conventional parameters.
func DefaultShallowConfig() ShallowConfig { return ShallowConfig{Ridge: 1e-2, PolyTopK: 8} }

// TrainShallow fits a shallow regressor of the given kind on a feature
// matrix x (rows = windows) and target series y.
func TrainShallow(kind ShallowKind, x [][]float64, y []float64, cfg ShallowConfig) (*Shallow, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("baselines: shallow fit needs aligned data (%d rows, %d targets)", len(x), len(y))
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-2
	}
	if cfg.PolyTopK <= 0 {
		cfg.PolyTopK = 8
	}
	s := &Shallow{kind: kind}
	if kind == ShallowPolynomial {
		s.topIdx = topCorrelated(x, y, cfg.PolyTopK)
	}
	rows := make([][]float64, len(x))
	for i, r := range x {
		rows[i] = s.expand(r)
	}
	coef, err := ridgeFit(rows, y, cfg.Ridge)
	if err != nil {
		return nil, fmt.Errorf("baselines: shallow %s fit: %w", kind, err)
	}
	s.coef = coef
	return s, nil
}

// expand maps a raw feature row into the hypothesis class's design row
// (without the intercept, which ridgeFit adds).
func (s *Shallow) expand(row []float64) []float64 {
	if s.kind == ShallowLinear {
		return row
	}
	out := append([]float64(nil), row...)
	for i, a := range s.topIdx {
		for _, b := range s.topIdx[i:] {
			out = append(out, row[a]*row[b])
		}
	}
	return out
}

// Predict evaluates the regressor over a feature matrix.
func (s *Shallow) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, raw := range x {
		row := s.expand(raw)
		v := s.coef[0]
		for j, w := range s.coef[1:] {
			if j < len(row) {
				v += w * row[j]
			}
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Kind returns the hypothesis class.
func (s *Shallow) Kind() ShallowKind { return s.kind }

// topCorrelated returns the indices of the k features with the largest
// absolute Pearson correlation with y.
func topCorrelated(x [][]float64, y []float64, k int) []int {
	d := len(x[0])
	my := meanF(y)
	type fc struct {
		idx int
		c   float64
	}
	all := make([]fc, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(x))
		for i := range x {
			col[i] = x[i][j]
		}
		mx := meanF(col)
		var num, vx, vy float64
		for i := range col {
			num += (col[i] - mx) * (y[i] - my)
			vx += (col[i] - mx) * (col[i] - mx)
			vy += (y[i] - my) * (y[i] - my)
		}
		c := 0.0
		if vx > 0 && vy > 0 {
			c = math.Abs(num / math.Sqrt(vx*vy))
		}
		all[j] = fc{j, c}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].idx < all[j].idx
	})
	if k > d {
		k = d
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	sort.Ints(out)
	return out
}

func meanF(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// ridgeFit solves min ||Xw − y||² + λ||w||² with an unpenalised intercept
// via the normal equations.
func ridgeFit(rows [][]float64, y []float64, ridge float64) ([]float64, error) {
	d := len(rows[0]) + 1 // intercept
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	atb := make([]float64, d)
	design := make([]float64, d)
	for r, row := range rows {
		design[0] = 1
		copy(design[1:], row)
		for i := 0; i < d; i++ {
			if design[i] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				ata[i][j] += design[i] * design[j]
			}
			atb[i] += design[i] * y[r]
		}
	}
	for i := 1; i < d; i++ {
		ata[i][i] += ridge
	}
	ata[0][0] += 1e-9
	coef, ok := solveLinear(ata, atb)
	if !ok {
		return nil, fmt.Errorf("singular normal equations (%d unknowns)", d)
	}
	return coef, nil
}
