package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/app"
	"repro/internal/nn/ad"
	"repro/internal/nn/layers"
	"repro/internal/nn/opt"
)

// RAConfig configures the resource-aware deep-learning baseline.
type RAConfig struct {
	// Hidden is the GRU width.
	Hidden int
	// Epochs is the number of training epochs.
	Epochs int
	// ChunkLen is the truncated-BPTT segment length.
	ChunkLen int
	// LR is the Adam learning rate.
	LR float64
	// ClipNorm bounds the gradient norm.
	ClipNorm float64
	// Seed drives initialisation and shuffling.
	Seed int64
	// Parallelism bounds concurrent per-pair training; 0 = GOMAXPROCS.
	Parallelism int
}

// DefaultRAConfig returns the configuration used by the experiment drivers.
func DefaultRAConfig() RAConfig {
	return RAConfig{Hidden: 16, Epochs: 12, ChunkLen: 64, LR: 0.01, ClipNorm: 5, Seed: 7}
}

// raExpert forecasts one pair's utilization from its own history: the input
// at step t is the (scaled) value one day earlier plus a time-of-day
// encoding, so the model captures exactly the recurring daily patterns that
// prior work relies on — and nothing about API traffic.
type raExpert struct {
	cell  *layers.GRUCell
	head  *layers.Dense
	scale float64
	delta bool
	base  float64
	wpd   int
	// scaled is the full scaled training series, kept to warm the hidden
	// state and seed the first forecast day.
	scaled []float64
}

// ResourceAware is the paper's "resrc-aware DL" baseline: per-pair
// next-day forecasting from historical utilization.
type ResourceAware struct {
	cfg     RAConfig
	wpd     int
	experts map[app.Pair]*raExpert
}

// TrainResourceAware fits one forecaster per pair on the training series.
// windowsPerDay sets the seasonal period.
func TrainResourceAware(usage map[app.Pair][]float64, windowsPerDay int, cfg RAConfig) (*ResourceAware, error) {
	if windowsPerDay <= 0 {
		return nil, fmt.Errorf("baselines: windowsPerDay must be positive")
	}
	for p, series := range usage {
		if len(series) < 2*windowsPerDay {
			return nil, fmt.Errorf("baselines: %s has %d samples; need at least two days (%d)", p, len(series), 2*windowsPerDay)
		}
	}
	r := &ResourceAware{cfg: cfg, wpd: windowsPerDay, experts: make(map[app.Pair]*raExpert, len(usage))}

	pairs := make([]app.Pair, 0, len(usage))
	for p := range usage {
		pairs = append(pairs, p)
	}
	// Deterministic order for reproducible seeding.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].String() < pairs[j-1].String(); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, p := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p app.Pair) {
			defer wg.Done()
			defer func() { <-sem }()
			e := trainRAExpert(p, usage[p], windowsPerDay, cfg, cfg.Seed+int64(i))
			mu.Lock()
			r.experts[p] = e
			mu.Unlock()
		}(i, p)
	}
	wg.Wait()
	return r, nil
}

func trainRAExpert(p app.Pair, series []float64, wpd int, cfg RAConfig, seed int64) *raExpert {
	e := &raExpert{delta: p.Resource == app.DiskUsage, scale: 1, wpd: wpd}
	raw := series
	if e.delta {
		e.base = series[len(series)-1]
		raw = diff(series)
	}
	max := 0.0
	for _, v := range raw {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	if max > 0 {
		e.scale = max
	}
	e.scaled = make([]float64, len(raw))
	for i, v := range raw {
		e.scaled[i] = v / e.scale
	}

	rng := rand.New(rand.NewSource(seed))
	e.cell = layers.NewGRUCell(p.String()+".ra", 3, cfg.Hidden, rng)
	e.head = layers.NewDense(p.String()+".ra.head", cfg.Hidden, 1, rng)
	params := append(e.cell.Params(), e.head.Params()...)
	optimizer := opt.NewAdam(params, cfg.LR)
	optimizer.ClipNorm = cfg.ClipNorm

	// Training steps: t in [wpd, len) — the input needs the value one
	// day earlier.
	start := wpd
	n := len(e.scaled) - start
	nChunks := (n + cfg.ChunkLen - 1) / cfg.ChunkLen
	order := make([]int, nChunks)
	for i := range order {
		order[i] = i
	}
	tape := ad.NewTape()
	zeroH := make([]float64, cfg.Hidden)
	tgt := make([]float64, 1)
	losses := make([]*ad.Value, 0, cfg.ChunkLen)
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ci := range order {
			from := start + ci*cfg.ChunkLen
			to := from + cfg.ChunkLen
			if to > len(e.scaled) {
				to = len(e.scaled)
			}
			tape.Reset()
			h := tape.Const(zeroH)
			losses = losses[:0]
			for t := from; t < to; t++ {
				xt := tape.Const(e.input(t))
				h = e.cell.Step(tape, xt, h)
				y := e.head.Apply(tape, h)
				tgt[0] = e.scaled[t]
				losses = append(losses, tape.SquaredError(y, tgt))
			}
			total := tape.SumScalars(losses...)
			mean := tape.ScaleConst(total, 1/float64(to-from))
			tape.Backward(mean)
			optimizer.Step()
		}
	}
	return e
}

func diff(series []float64) []float64 {
	out := make([]float64, len(series))
	for i := 1; i < len(series); i++ {
		out[i] = series[i] - series[i-1]
	}
	return out
}

// wpd is stored on the expert for input construction.
func (e *raExpert) input(t int) []float64 {
	phase := 2 * math.Pi * float64(t%e.wpd) / float64(e.wpd)
	return []float64{e.scaled[t-e.wpd], math.Sin(phase), math.Cos(phase)}
}

// forecastInput builds the input for forecast step t (0-based beyond the
// training series), reading from the combined history buffer.
func (e *raExpert) forecastInput(buf []float64, t int) []float64 {
	abs := len(e.scaled) + t
	ph := 2 * math.Pi * float64(abs%e.wpd) / float64(e.wpd)
	return []float64{buf[abs-e.wpd], math.Sin(ph), math.Cos(ph)}
}

// forecast rolls the expert forward for `horizon` windows beyond its
// training series and returns the descaled prediction.
func (e *raExpert) forecast(horizon int) []float64 {
	// Pure inference: run on a gradient-free eval tape. Reset recycles
	// all tape memory each step, so the recurrent state is carried across
	// steps in a buffer the tape does not own.
	tape := ad.NewEvalTape()
	hbuf := make([]float64, e.cell.Hidden)
	// Warm the hidden state over the tail of the training series (one
	// day is plenty: the GRU's memory horizon is far shorter).
	warmFrom := e.wpd
	if len(e.scaled)-warmFrom > 2*e.wpd {
		warmFrom = len(e.scaled) - 2*e.wpd
	}
	for t := warmFrom; t < len(e.scaled); t++ {
		h := tape.Const(hbuf)
		xt := tape.Const(e.input(t))
		h = e.cell.Step(tape, xt, h)
		copy(hbuf, h.Data)
		tape.Reset()
	}
	buf := append([]float64{}, e.scaled...)
	out := make([]float64, horizon)
	acc := e.base
	for t := 0; t < horizon; t++ {
		h := tape.Const(hbuf)
		xt := tape.Const(e.forecastInput(buf, t))
		h = e.cell.Step(tape, xt, h)
		y := e.head.Apply(tape, h)
		pred := y.Data[0]
		buf = append(buf, pred)
		copy(hbuf, h.Data)
		tape.Reset()
		v := pred * e.scale
		if e.delta {
			acc += v
			out[t] = acc
		} else {
			if v < 0 {
				v = 0
			}
			out[t] = v
		}
	}
	return out
}

// Forecast returns the baseline's forecast for pair p over the next
// `horizon` windows following the training period. The forecast depends
// only on history — by design it cannot react to the query's API traffic.
func (r *ResourceAware) Forecast(p app.Pair, horizon int) ([]float64, error) {
	e, ok := r.experts[p]
	if !ok {
		return nil, fmt.Errorf("baselines: resource-aware DL has no model for %s", p)
	}
	return e.forecast(horizon), nil
}
