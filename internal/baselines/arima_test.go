package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/eval"
)

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solveLinear failed")
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v", x)
	}
	// Singular system.
	if _, ok := solveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); ok {
		t.Error("singular system should fail")
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, ok := solveLinear(a, b)
	if !ok || math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("x = %v ok=%v", x, ok)
	}
}

func TestFitARRecoversCoefficients(t *testing.T) {
	// Simulate AR(2): d_t = 0.5 d_{t-1} − 0.3 d_{t-2} + ε.
	rng := rand.New(rand.NewSource(1))
	d := make([]float64, 3000)
	for t := 2; t < len(d); t++ {
		d[t] = 0.5*d[t-1] - 0.3*d[t-2] + 0.1*rng.NormFloat64()
	}
	coef, err := fitAR(d, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[1]-0.5) > 0.05 || math.Abs(coef[2]+0.3) > 0.05 {
		t.Errorf("coef = %v, want [~0, 0.5, -0.3]", coef)
	}
}

func TestARForecastsSeasonalSeries(t *testing.T) {
	wpd := 24
	p := app.Pair{Component: "A", Resource: app.CPU}
	series := make([]float64, wpd*5)
	rng := rand.New(rand.NewSource(2))
	for i := range series {
		series[i] = 80 + 30*math.Sin(2*math.Pi*float64(i%wpd)/float64(wpd)) + rng.NormFloat64()
	}
	ar, err := TrainAR(map[app.Pair][]float64{p: series}, wpd, DefaultARConfig())
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ar.Forecast(p, wpd)
	if err != nil {
		t.Fatal(err)
	}
	mape := eval.MAPE(fc, series[:wpd])
	t.Logf("AR forecast MAPE: %.2f%%", mape)
	if mape > 8 {
		t.Errorf("AR forecast MAPE %.2f%% too high for a clean seasonal series", mape)
	}
}

func TestARDiskMonotone(t *testing.T) {
	wpd := 24
	p := app.Pair{Component: "DB", Resource: app.DiskUsage}
	series := make([]float64, wpd*4)
	for i := range series {
		series[i] = 500 + 2.5*float64(i)
	}
	ar, err := TrainAR(map[app.Pair][]float64{p: series}, wpd, DefaultARConfig())
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := ar.Forecast(p, wpd)
	if fc[0] < series[len(series)-1] {
		t.Errorf("disk forecast %v below last observation %v", fc[0], series[len(series)-1])
	}
	growth := fc[len(fc)-1] - fc[0]
	want := 2.5 * float64(wpd-1)
	if math.Abs(growth-want) > 0.3*want {
		t.Errorf("growth = %v, want ≈%v", growth, want)
	}
}

func TestARValidation(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	if _, err := TrainAR(map[app.Pair][]float64{p: make([]float64, 10)}, 24, DefaultARConfig()); err == nil {
		t.Error("short series must fail")
	}
	if _, err := TrainAR(map[app.Pair][]float64{p: make([]float64, 100)}, 0, DefaultARConfig()); err == nil {
		t.Error("zero period must fail")
	}
	ar, err := TrainAR(map[app.Pair][]float64{p: make([]float64, 100)}, 24, DefaultARConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Forecast(app.Pair{Component: "ghost"}, 5); err == nil {
		t.Error("unknown pair must fail")
	}
}

// Property: for a perfectly periodic series the seasonal difference is zero
// and the forecast reproduces the last season.
func TestARPeriodicFixedPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wpd := 12
		pattern := make([]float64, wpd)
		for i := range pattern {
			pattern[i] = 50 + 40*rng.Float64()
		}
		series := make([]float64, wpd*4)
		for i := range series {
			series[i] = pattern[i%wpd]
		}
		p := app.Pair{Component: "A", Resource: app.CPU}
		ar, err := TrainAR(map[app.Pair][]float64{p: series}, wpd, DefaultARConfig())
		if err != nil {
			return false
		}
		fc, err := ar.Forecast(p, wpd)
		if err != nil {
			return false
		}
		for i := range fc {
			if math.Abs(fc[i]-pattern[i%wpd]) > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
