// Package baselines implements the three comparison techniques of the
// paper's §5.1:
//
//   - Resource-aware deep learning: a per-(component, resource) recurrent
//     forecaster trained purely on historical utilization — the
//     representative of prior time-series approaches. It cannot consider
//     the API traffic a query specifies.
//   - Simple scaling: scales every resource of every component by one
//     global factor derived from the total request volume.
//   - Component-aware scaling: uses distributed traces to learn a
//     per-component invocation factor, but scales all resources of a
//     component identically.
//
// All three share small conventions with the estimator so comparisons are
// apples-to-apples: monotone counters (disk usage) are modelled as growth
// and re-integrated from the last value observed in training.
package baselines

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/trace"
)

// historyStats holds the per-pair statistics shared by the scaling
// baselines.
type historyStats struct {
	meanUtil   float64 // mean utilization over training (level resources)
	meanGrowth float64 // mean per-window growth (monotone counters)
	base       float64 // last observed value (monotone counters)
}

func fitHistory(p app.Pair, series []float64) historyStats {
	var st historyStats
	if len(series) == 0 {
		return st
	}
	if p.Resource == app.DiskUsage {
		st.base = series[len(series)-1]
		if len(series) > 1 {
			st.meanGrowth = (series[len(series)-1] - series[0]) / float64(len(series)-1)
		}
		return st
	}
	sum := 0.0
	for _, v := range series {
		sum += v
	}
	st.meanUtil = sum / float64(len(series))
	return st
}

// estimate produces the baseline series for one pair given its per-window
// scaling factors.
func (st historyStats) estimate(p app.Pair, factors []float64) []float64 {
	out := make([]float64, len(factors))
	if p.Resource == app.DiskUsage {
		acc := st.base
		for i, f := range factors {
			acc += st.meanGrowth * f
			out[i] = acc
		}
		return out
	}
	for i, f := range factors {
		out[i] = st.meanUtil * f
	}
	return out
}

// SimpleScaling scales all resources in all components by the same factor:
// the ratio of the query's total request rate to the mean total request
// rate observed in training.
type SimpleScaling struct {
	stats    map[app.Pair]historyStats
	meanRate float64
}

// TrainSimpleScaling fits the baseline from training utilization and the
// training per-window total request counts.
func TrainSimpleScaling(usage map[app.Pair][]float64, totalRequests []float64) (*SimpleScaling, error) {
	if len(totalRequests) == 0 {
		return nil, fmt.Errorf("baselines: no training traffic")
	}
	s := &SimpleScaling{stats: make(map[app.Pair]historyStats, len(usage))}
	sum := 0.0
	for _, v := range totalRequests {
		sum += v
	}
	s.meanRate = sum / float64(len(totalRequests))
	if s.meanRate <= 0 {
		return nil, fmt.Errorf("baselines: training traffic is empty")
	}
	for p, series := range usage {
		s.stats[p] = fitHistory(p, series)
	}
	return s, nil
}

// Estimate returns the per-window estimate for pair p given the query's
// total request counts per window.
func (s *SimpleScaling) Estimate(p app.Pair, queryTotals []float64) ([]float64, error) {
	st, ok := s.stats[p]
	if !ok {
		return nil, fmt.Errorf("baselines: simple scaling has no history for %s", p)
	}
	factors := make([]float64, len(queryTotals))
	for i, r := range queryTotals {
		factors[i] = r / s.meanRate
	}
	return st.estimate(p, factors), nil
}

// ComponentAware scales each component by how many more or fewer
// invocations it receives in the query relative to training, derived from
// distributed traces — but applies the same factor to every resource of the
// component (the paper's component-aware scaling baseline).
type ComponentAware struct {
	stats     map[app.Pair]historyStats
	meanInvoc map[string]float64
}

// CountInvocations returns, per window, the number of span visits per
// component across the window's trace batches.
func CountInvocations(windows [][]trace.Batch) []map[string]float64 {
	out := make([]map[string]float64, len(windows))
	for w, batches := range windows {
		m := make(map[string]float64)
		for _, b := range batches {
			if b.Trace.Root == nil {
				continue
			}
			n := float64(b.Count)
			b.Trace.Root.Walk(func(s *trace.Span, _ []string) {
				m[s.Component] += n
			})
		}
		out[w] = m
	}
	return out
}

// TrainComponentAware fits the baseline from training utilization and
// training trace windows.
func TrainComponentAware(usage map[app.Pair][]float64, windows [][]trace.Batch) (*ComponentAware, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("baselines: no training traces")
	}
	c := &ComponentAware{
		stats:     make(map[app.Pair]historyStats, len(usage)),
		meanInvoc: make(map[string]float64),
	}
	for p, series := range usage {
		c.stats[p] = fitHistory(p, series)
	}
	counts := CountInvocations(windows)
	totals := make(map[string]float64)
	for _, m := range counts {
		for comp, n := range m {
			totals[comp] += n
		}
	}
	for comp, n := range totals {
		c.meanInvoc[comp] = n / float64(len(windows))
	}
	return c, nil
}

// Estimate returns the per-window estimate for pair p given the query's
// trace windows (real traces for sanity checks, synthetic ones for
// hypothetical traffic).
func (c *ComponentAware) Estimate(p app.Pair, queryWindows [][]trace.Batch) ([]float64, error) {
	st, ok := c.stats[p]
	if !ok {
		return nil, fmt.Errorf("baselines: component-aware scaling has no history for %s", p)
	}
	mean := c.meanInvoc[p.Component]
	counts := CountInvocations(queryWindows)
	factors := make([]float64, len(counts))
	for i, m := range counts {
		if mean <= 0 {
			factors[i] = 0
			continue
		}
		factors[i] = m[p.Component] / mean
	}
	return st.estimate(p, factors), nil
}
