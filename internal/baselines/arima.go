package baselines

import (
	"fmt"
	"math"

	"repro/internal/app"
)

// ARConfig configures the seasonal autoregressive forecaster, the
// representative of the ARIMA-family predictors the paper cites as a
// popular auto-scaling choice ([18], [49], [50], [57]).
type ARConfig struct {
	// P is the autoregressive order on the seasonally differenced
	// series (default 4).
	P int
	// Ridge is the L2 regulariser of the least-squares fit (default
	// 1e-3), keeping the normal equations well conditioned.
	Ridge float64
}

// DefaultARConfig returns the conventional configuration.
func DefaultARConfig() ARConfig { return ARConfig{P: 4, Ridge: 1e-3} }

// arExpert is a seasonal AR(p) model for one pair: y is seasonally
// differenced at the period (d_t = y_t − y_{t−period}), an AR(p) with
// intercept is fitted to d by ridge least squares, and forecasts integrate
// the predicted differences back onto the last observed season.
type arExpert struct {
	coef   []float64 // [intercept, φ_1..φ_p]
	period int
	delta  bool
	base   float64
	// history holds the (possibly delta-transformed) training series.
	history []float64
}

// AR is the paper's ARIMA-style baseline: per-pair seasonal
// autoregression on historical utilization. Like resrc-aware DL it is
// blind to the query's API traffic.
type AR struct {
	experts map[app.Pair]*arExpert
}

// TrainAR fits one seasonal AR model per pair.
func TrainAR(usage map[app.Pair][]float64, windowsPerDay int, cfg ARConfig) (*AR, error) {
	if windowsPerDay <= 0 {
		return nil, fmt.Errorf("baselines: windowsPerDay must be positive")
	}
	if cfg.P <= 0 {
		cfg.P = 4
	}
	a := &AR{experts: make(map[app.Pair]*arExpert, len(usage))}
	for p, series := range usage {
		if len(series) < windowsPerDay+cfg.P+2 {
			return nil, fmt.Errorf("baselines: %s has %d samples; need > %d", p, len(series), windowsPerDay+cfg.P+2)
		}
		e := &arExpert{period: windowsPerDay, delta: p.Resource == app.DiskUsage}
		raw := series
		if e.delta {
			e.base = series[len(series)-1]
			raw = diff(series)
		}
		e.history = append([]float64(nil), raw...)
		d := seasonalDiff(raw, windowsPerDay)
		coef, err := fitAR(d, cfg.P, cfg.Ridge)
		if err != nil {
			return nil, fmt.Errorf("baselines: %s: %w", p, err)
		}
		e.coef = coef
		a.experts[p] = e
	}
	return a, nil
}

// seasonalDiff returns d_t = y_t − y_{t−period} for t ≥ period.
func seasonalDiff(y []float64, period int) []float64 {
	out := make([]float64, len(y)-period)
	for t := period; t < len(y); t++ {
		out[t-period] = y[t] - y[t-period]
	}
	return out
}

// fitAR solves the ridge least-squares AR(p)-with-intercept fit via the
// normal equations.
func fitAR(d []float64, p int, ridge float64) ([]float64, error) {
	n := len(d) - p
	if n < p+1 {
		return nil, fmt.Errorf("series too short for AR(%d)", p)
	}
	k := p + 1 // intercept + p lags
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	row := make([]float64, k)
	for t := p; t < len(d); t++ {
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = d[t-i]
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * d[t]
		}
	}
	for i := 0; i < k; i++ {
		ata[i][i] += ridge
	}
	coef, ok := solveLinear(ata, atb)
	if !ok {
		return nil, fmt.Errorf("singular normal equations")
	}
	return coef, nil
}

// solveLinear performs Gaussian elimination with partial pivoting on a
// small dense system, in place.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, true
}

// Forecast rolls the model forward for `horizon` windows beyond the
// training period.
func (a *AR) Forecast(p app.Pair, horizon int) ([]float64, error) {
	e, ok := a.experts[p]
	if !ok {
		return nil, fmt.Errorf("baselines: AR has no model for %s", p)
	}
	period := e.period
	pOrder := len(e.coef) - 1
	// Seed the difference lags from the end of the training series.
	dHist := seasonalDiff(e.history, period)
	lags := append([]float64(nil), dHist...)
	yHist := append([]float64(nil), e.history...)
	out := make([]float64, horizon)
	acc := e.base
	for t := 0; t < horizon; t++ {
		dHat := e.coef[0]
		for i := 1; i <= pOrder; i++ {
			dHat += e.coef[i] * lags[len(lags)-i]
		}
		yHat := yHist[len(yHist)-period] + dHat
		lags = append(lags, dHat)
		yHist = append(yHist, yHat)
		if e.delta {
			acc += yHat
			out[t] = acc
		} else {
			if yHat < 0 {
				yHat = 0
			}
			out[t] = yHat
		}
	}
	return out, nil
}
