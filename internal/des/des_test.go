package des

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
)

// singleStation is a one-component, one-API spec with known queueing
// parameters: service mean 10 ms (1000 mc-ms at 100 mcores → μ = 100/s).
func singleStation() *app.Spec {
	return &app.Spec{
		Name: "mm1",
		Components: []app.Component{
			{Name: "S", CPUCapacity: 100},
		},
		APIs: []app.API{{
			Name:      "/x",
			Templates: []app.Template{{Prob: 1, Root: app.Node("S", "op", app.Cost{CPUms: 1000})}},
		}},
	}
}

func TestMM1MatchesClosedForm(t *testing.T) {
	// M/M/1 at ρ = 0.5: mean sojourn = 1/(μ−λ) = 20 ms.
	res, err := Run(singleStation(), Config{
		Arrivals: map[string]float64{"/x": 50},
		Duration: 400, Warmup: 40,
		Service: Exponential, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 5000 {
		t.Fatalf("too few samples: %d", res.Completed)
	}
	mean := res.MeanLatency("/x")
	if math.Abs(mean-20) > 2 {
		t.Errorf("M/M/1 mean sojourn = %.2f ms, want 20 ± 2", mean)
	}
	// Utilization ≈ ρ.
	if u := res.Utilization["S"]; math.Abs(u-0.5) > 0.05 {
		t.Errorf("utilization = %.3f, want ≈0.5", u)
	}
	// Sojourn is exponential(μ−λ): p95 = ln(20)/(μ−λ) ≈ 59.9 ms.
	if p95 := res.Percentile("/x", 95); math.Abs(p95-59.9) > 8 {
		t.Errorf("p95 = %.2f ms, want ≈59.9", p95)
	}
}

func TestMD1WaitIsHalfOfMM1(t *testing.T) {
	// M/D/1 at ρ = 0.5: wait = ρS/(2(1−ρ)) = 5 ms → sojourn 15 ms.
	res, err := Run(singleStation(), Config{
		Arrivals: map[string]float64{"/x": 50},
		Duration: 400, Warmup: 40,
		Service: Deterministic, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanLatency("/x")
	if math.Abs(mean-15) > 1.5 {
		t.Errorf("M/D/1 mean sojourn = %.2f ms, want 15 ± 1.5", mean)
	}
}

// TestAgreesWithAnalyticModel cross-validates the DES against the closed-form
// network model in internal/sim on the Toy application.
func TestAgreesWithAnalyticModel(t *testing.T) {
	spec := app.Toy()
	// Per-second rates keeping every station comfortably below
	// saturation: the slowest is the DB at 1100/60 ≈ 18.3 ms per read.
	arrivals := map[string]float64{"/read": 20, "/write": 8}

	res, err := Run(spec, Config{
		Arrivals: arrivals,
		Duration: 600, Warmup: 60,
		Service: Exponential, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	model, err := sim.NewLatencyModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[string]int{"/read": 20 * 60, "/write": 8 * 60}
	loads, lats, err := model.Evaluate(reqs, 60)
	if err != nil {
		t.Fatal(err)
	}
	for api, want := range lats {
		got := res.MeanLatency(api)
		if math.Abs(got-want.MeanMs) > 0.2*want.MeanMs {
			t.Errorf("%s: DES mean %.2f ms vs analytic %.2f ms (>20%% apart)", api, got, want.MeanMs)
		}
	}
	for comp, want := range loads {
		got := res.Utilization[comp]
		if math.Abs(got-want.Utilization) > 0.07 {
			t.Errorf("%s: DES utilization %.3f vs analytic %.3f", comp, got, want.Utilization)
		}
	}
}

func TestOverloadSheds(t *testing.T) {
	res, err := Run(singleStation(), Config{
		Arrivals: map[string]float64{"/x": 300}, // 3× capacity
		Duration: 30, Warmup: 0,
		Service: Exponential, Seed: 4, MaxInFlight: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Error("overload should shed arrivals at the in-flight cap")
	}
	if u := res.Utilization["S"]; u < 0.95 {
		t.Errorf("overloaded utilization = %.3f, want ≈1", u)
	}
}

func TestRunValidation(t *testing.T) {
	spec := singleStation()
	if _, err := Run(spec, Config{Arrivals: map[string]float64{"/x": 1}, Duration: 0}); err == nil {
		t.Error("zero duration must fail")
	}
	if _, err := Run(spec, Config{Arrivals: map[string]float64{"/x": 1}, Duration: 10, Warmup: 10}); err == nil {
		t.Error("warmup ≥ duration must fail")
	}
	if _, err := Run(spec, Config{Arrivals: map[string]float64{"/nope": 1}, Duration: 10}); err == nil {
		t.Error("unknown API must fail")
	}
	noCap := &app.Spec{
		Name:       "nocap",
		Components: []app.Component{{Name: "S"}},
		APIs: []app.API{{
			Name:      "/x",
			Templates: []app.Template{{Prob: 1, Root: app.Node("S", "op", app.Cost{CPUms: 1})}},
		}},
	}
	if _, err := Run(noCap, Config{Arrivals: map[string]float64{"/x": 1}, Duration: 10}); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Arrivals: map[string]float64{"/x": 40},
		Duration: 60, Warmup: 5,
		Service: Exponential, Seed: 9,
	}
	a, err := Run(singleStation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(singleStation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.MeanLatency("/x") != b.MeanLatency("/x") {
		t.Error("same seed must reproduce the run exactly")
	}
}

func TestPercentilesMonotone(t *testing.T) {
	res, err := Run(singleStation(), Config{
		Arrivals: map[string]float64{"/x": 60},
		Duration: 120, Warmup: 10,
		Service: Exponential, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.Percentile("/x", 50)
	p95 := res.Percentile("/x", 95)
	p99 := res.Percentile("/x", 99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not monotone: %v %v %v", p50, p95, p99)
	}
	if math.IsNaN(res.Percentile("/missing", 50)) == false {
		t.Error("missing API percentile must be NaN")
	}
}
