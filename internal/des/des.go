// Package des is a request-level discrete-event simulator of the open
// queueing network an app.Spec defines: requests arrive per API as Poisson
// processes, sample an invocation-path template, and traverse it as
// synchronous RPCs — each (component) is a FIFO single-server station whose
// speed is its CPU capacity, and the parent span blocks while a child
// executes, exactly like the span trees of the paper's Figure 3.
//
// It complements the analytic M/M/1 model in internal/sim two ways: it
// produces full latency *distributions* (not just means and tail
// approximations), and it empirically validates the analytic formulas — the
// cross-check internal/des tests perform. It also emits spans with real
// timings, the shape a production Jaeger would record.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/app"
)

// ServiceDist selects the service-time distribution of every station.
type ServiceDist int

// Service-time distributions.
const (
	// Exponential service: stations behave as M/M/1 (matches the
	// analytic model in internal/sim).
	Exponential ServiceDist = iota
	// Deterministic service: stations behave as M/D/1.
	Deterministic
)

// Config parameterises a simulation run.
type Config struct {
	// Arrivals is the Poisson arrival rate per API, in requests/second.
	Arrivals map[string]float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Warmup discards requests that finish before this time (seconds),
	// letting queues reach steady state before measuring.
	Warmup float64
	// Service selects the service-time distribution.
	Service ServiceDist
	// Seed drives all randomness.
	Seed int64
	// MaxInFlight bounds simultaneously active requests as a safety
	// valve for overloaded configurations (default 100000).
	MaxInFlight int
}

// Result aggregates a run's measurements.
type Result struct {
	// Latencies holds per-API end-to-end latency samples in
	// milliseconds, sorted ascending.
	Latencies map[string][]float64
	// Utilization is each station's busy fraction over the horizon.
	Utilization map[string]float64
	// Completed counts measured (post-warmup) requests; Started counts
	// all arrivals that entered the system.
	Completed, Started int
	// Shed counts arrivals dropped by the MaxInFlight safety valve.
	Shed int
}

// MeanLatency returns the mean of an API's samples in milliseconds.
func (r *Result) MeanLatency(api string) float64 {
	s := r.Latencies[api]
	if len(s) == 0 {
		return math.NaN()
	}
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t / float64(len(s))
}

// Percentile returns the p-th percentile (0–100) of an API's samples.
func (r *Result) Percentile(api string, p float64) float64 {
	s := r.Latencies[api]
	if len(s) == 0 {
		return math.NaN()
	}
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// visit is one station visit with its CPU work in mc-ms.
type visit struct {
	component string
	workMcMs  float64
}

// request tracks one in-flight request.
type request struct {
	api     string
	visits  []visit
	idx     int
	arrived float64
}

// station is a FIFO single-server queue.
type station struct {
	capacity float64 // mcores
	queue    []*request
	busy     bool
	busyTime float64 // accumulated busy seconds
}

// event is a scheduled occurrence.
type event struct {
	at   float64
	kind eventKind
	api  string   // for arrivals
	req  *request // for completions
	comp string   // for completions
	seq  int      // tie-breaker for determinism
}

type eventKind int

const (
	evArrival eventKind = iota
	evComplete
)

// eventHeap is a min-heap on time (then sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// engine is the running state.
type engine struct {
	spec      *app.Spec
	cfg       Config
	rng       *rand.Rand
	stations  map[string]*station
	templates map[string][]desTemplate
	events    eventHeap
	seq       int
	now       float64
	inFlight  int
	res       *Result
}

type desTemplate struct {
	prob   float64
	visits []visit
}

// Run simulates the spec under the configured arrivals and returns the
// measured distributions.
func Run(spec *app.Spec, cfg Config) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("des: invalid spec: %w", err)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("des: duration must be positive")
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration {
		return nil, fmt.Errorf("des: warmup must be in [0, duration)")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 100000
	}
	s := &engine{
		spec:      spec,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		stations:  make(map[string]*station, len(spec.Components)),
		templates: make(map[string][]desTemplate, len(spec.APIs)),
		res: &Result{
			Latencies:   make(map[string][]float64),
			Utilization: make(map[string]float64),
		},
	}
	for _, c := range spec.Components {
		if c.CPUCapacity <= 0 {
			return nil, fmt.Errorf("des: component %q has no CPU capacity", c.Name)
		}
		s.stations[c.Name] = &station{capacity: c.CPUCapacity}
	}
	for _, a := range spec.APIs {
		for _, t := range a.Templates {
			var visits []visit
			var rec func(n *app.PathNode)
			rec = func(n *app.PathNode) {
				visits = append(visits, visit{component: n.Component, workMcMs: n.Cost.CPUms})
				for _, ch := range n.Children {
					rec(ch)
				}
			}
			rec(t.Root)
			s.templates[a.Name] = append(s.templates[a.Name], desTemplate{prob: t.Prob, visits: visits})
		}
	}

	// Schedule the first arrival per API.
	apis := make([]string, 0, len(cfg.Arrivals))
	for api := range cfg.Arrivals {
		apis = append(apis, api)
	}
	sort.Strings(apis)
	for _, api := range apis {
		rate := cfg.Arrivals[api]
		if rate <= 0 {
			continue
		}
		if _, ok := s.templates[api]; !ok {
			return nil, fmt.Errorf("des: unknown API %q", api)
		}
		s.push(&event{at: s.rng.ExpFloat64() / rate, kind: evArrival, api: api})
	}

	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.at > cfg.Duration {
			break
		}
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			s.handleArrival(ev.api)
		case evComplete:
			s.handleComplete(ev.req, ev.comp)
		}
	}
	for name, st := range s.stations {
		s.res.Utilization[name] = st.busyTime / cfg.Duration
	}
	for api := range s.res.Latencies {
		sort.Float64s(s.res.Latencies[api])
	}
	return s.res, nil
}

func (s *engine) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *engine) handleArrival(api string) {
	// Next arrival of this API.
	rate := s.cfg.Arrivals[api]
	s.push(&event{at: s.now + s.rng.ExpFloat64()/rate, kind: evArrival, api: api})

	if s.inFlight >= s.cfg.MaxInFlight {
		s.res.Shed++
		return
	}
	tpl := s.sampleTemplate(api)
	req := &request{api: api, visits: tpl.visits, arrived: s.now}
	s.inFlight++
	s.res.Started++
	s.enqueue(req)
}

// sampleTemplate draws an invocation template by probability.
func (s *engine) sampleTemplate(api string) desTemplate {
	tpls := s.templates[api]
	u := s.rng.Float64()
	acc := 0.0
	for _, t := range tpls {
		acc += t.prob
		if u <= acc {
			return t
		}
	}
	return tpls[len(tpls)-1]
}

// enqueue places the request at its current visit's station, starting
// service immediately if the server is idle.
func (s *engine) enqueue(req *request) {
	v := req.visits[req.idx]
	st := s.stations[v.component]
	if st.busy {
		st.queue = append(st.queue, req)
		return
	}
	s.startService(st, req, v.component)
}

func (s *engine) startService(st *station, req *request, comp string) {
	st.busy = true
	v := req.visits[req.idx]
	// Service time in seconds: workMcMs mc-ms at capacity mcores → ms.
	meanMs := v.workMcMs / st.capacity
	var ms float64
	if s.cfg.Service == Exponential {
		ms = s.rng.ExpFloat64() * meanMs
	} else {
		ms = meanMs
	}
	st.busyTime += ms / 1000
	s.push(&event{at: s.now + ms/1000, kind: evComplete, req: req, comp: comp})
}

func (s *engine) handleComplete(req *request, comp string) {
	st := s.stations[comp]
	st.busy = false
	// Serve the next queued request at this station.
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		s.startService(st, next, comp)
	}
	// Advance the completing request.
	req.idx++
	if req.idx < len(req.visits) {
		s.enqueue(req)
		return
	}
	s.inFlight--
	if s.now >= s.cfg.Warmup {
		s.res.Completed++
		s.res.Latencies[req.api] = append(s.res.Latencies[req.api], (s.now-req.arrived)*1000)
	}
}
