// Package core assembles DeepRest's end-to-end system (paper Figure 4):
// the application learning phase over production telemetry, and the two
// query modes —
//
//	Mode 1: hypothetical API traffic → trace synthesizer → feature
//	        extractor → estimator → resource-allocation plan;
//	Mode 2: real API traffic and traces → feature extractor → estimator →
//	        expected utilization → application sanity check.
//
// The package wires together the feature extractor (internal/features), the
// trace synthesizer (internal/synth), the multi-expert deep estimator
// (internal/estimator), and the sanity checker (internal/anomaly). It is
// the implementation behind the public deeprest package at the module root.
package core

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/estimator/infer"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures the application learning phase.
type Options struct {
	// Estimator carries the neural configuration; zero-value fields are
	// filled from estimator.DefaultConfig.
	Estimator estimator.Config
	// Pairs optionally restricts learning to a subset of
	// (component, resource) pairs; nil learns every pair the telemetry
	// server recorded.
	Pairs []app.Pair
	// Anonymize, when true, hashes component, operation, and API names
	// before they enter the model — the paper's privacy-preserving
	// deployment mode for DeepRest-as-a-service.
	Anonymize bool
	// HashSalt salts the anonymisation.
	HashSalt string
	// SynthSeed drives trace synthesis for Mode-1 queries.
	SynthSeed int64
	// Log receives training progress lines.
	Log io.Writer
	// Metrics, when non-nil, receives self-instrumentation: per-epoch
	// training counters and loss/duration series here, plus pipeline,
	// telemetry, and HTTP metrics in the layers that share these Options.
	// Nil disables instrumentation at zero cost (every obs handle is a
	// nil-safe no-op).
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured logs from the service and
	// pipeline layers (access lines, generation publishes, drift events).
	Logger *slog.Logger
	// Tracer, when non-nil, records stage spans (ingest, extract, score,
	// train, checkpoint, swap) across the layers that share these Options.
	// Nil disables stage tracing, like Metrics, at zero cost.
	Tracer *obs.SpanTracer
}

// DefaultOptions returns Options with the default estimator configuration.
func DefaultOptions() Options {
	return Options{Estimator: estimator.DefaultConfig(), SynthSeed: 11}
}

// System is a learned DeepRest instance for one application.
type System struct {
	opts   Options
	hasher *trace.Hasher
	model  *estimator.Model
	synth  *synth.Synthesizer

	// engine is the tape-free inference snapshot of model
	// (internal/estimator/infer), compiled when the system is built — i.e.
	// once per published generation, so serving reads never observe a
	// mixed-generation snapshot. Nil (compile refused the model's shape, or
	// the generation was retired) falls back to the eval-tape path, which
	// produces bit-identical results.
	engine atomic.Pointer[infer.Engine]
}

// compileEngine snapshots the trained model into the serving engine; on
// refusal the system keeps serving through the tape path.
func (s *System) compileEngine() {
	eng, err := infer.Compile(s.model)
	if err != nil {
		if s.opts.Logger != nil {
			s.opts.Logger.Debug("inference engine compile failed; serving via tape path", "err", err)
		}
		return
	}
	s.engine.Store(eng)
}

// Engine returns the compiled inference engine, or nil when the system
// serves through the tape path.
func (s *System) Engine() *infer.Engine { return s.engine.Load() }

// ReleaseEngine drops the inference snapshot — called when a generation is
// retired from the registry, so the parameter slabs are reclaimed even
// while a slow reader still holds the generation. Requests racing the
// release simply finish on the tape path.
func (s *System) ReleaseEngine() { s.engine.Store(nil) }

// Learn runs the application learning phase over windows [from, to) of the
// telemetry server: it builds the invocation-path feature space, learns
// Prob(path | API) for the trace synthesizer, and trains one DNN expert per
// (component, resource) pair.
func Learn(ts *telemetry.Server, from, to int, opts Options) (*System, error) {
	windows, err := ts.Traces(from, to)
	if err != nil {
		return nil, fmt.Errorf("core: fetch traces: %w", err)
	}
	var usage map[app.Pair][]float64
	if opts.Pairs == nil {
		usage, err = ts.Metrics(from, to)
		if err != nil {
			return nil, fmt.Errorf("core: fetch metrics: %w", err)
		}
	} else {
		usage = make(map[app.Pair][]float64, len(opts.Pairs))
		for _, p := range opts.Pairs {
			s, err := ts.Metric(p, from, to)
			if err != nil {
				return nil, fmt.Errorf("core: fetch metrics: %w", err)
			}
			usage[p] = s
		}
	}
	return LearnFromData(windows, usage, opts)
}

// LearnFromData is Learn for callers that already hold the telemetry in
// memory (tests, replay from files).
func LearnFromData(windows [][]trace.Batch, usage map[app.Pair][]float64, opts Options) (*System, error) {
	return LearnFromDataWarm(windows, usage, opts, nil)
}

// LearnFromDataWarm is LearnFromData with a warm-start hook: every freshly
// initialised expert is offered to the hook before training, letting the
// continuous-learning pipeline resume a new generation from the previous
// one's parameters. A nil hook trains from scratch.
func LearnFromDataWarm(windows [][]trace.Batch, usage map[app.Pair][]float64, opts Options, warm estimator.WarmStart) (*System, error) {
	if opts.Estimator.Hidden == 0 {
		opts.Estimator = estimator.DefaultConfig()
	}
	if opts.Log != nil && opts.Estimator.Log == nil {
		opts.Estimator.Log = opts.Log
	}
	if opts.Metrics != nil && opts.Estimator.Progress == nil {
		opts.Estimator.Progress = trainProgress(opts.Metrics)
	}
	s := &System{opts: opts}
	if opts.Anonymize {
		s.hasher = trace.NewHasher(opts.HashSalt)
		windows = anonymizeWindows(s.hasher, windows)
	}
	s.synth = synth.Learn(windows)
	_, span := opts.Tracer.Start(context.Background(), "core.learn")
	span.SetWindows(len(windows))
	model, err := estimator.TrainWarm(windows, usage, opts.Estimator, warm)
	span.SetErr(err)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("core: train estimator: %w", err)
	}
	s.model = model
	s.compileEngine()
	return s, nil
}

// Restore rebuilds a System around an already-trained (typically
// checkpoint-loaded) estimator model. The trace synthesizer is re-learned
// from the given telemetry windows — the model snapshot intentionally omits
// raw trace distributions (see Save). With no windows the system can still
// answer Mode-2 queries (sanity checks over real traces); Mode-1 traffic
// queries need at least one window per API to synthesize from.
func Restore(model *estimator.Model, windows [][]trace.Batch, opts Options) *System {
	s := &System{opts: opts, model: model}
	if opts.Anonymize {
		s.hasher = trace.NewHasher(opts.HashSalt)
		windows = anonymizeWindows(s.hasher, windows)
	}
	s.synth = synth.Learn(windows)
	s.compileEngine()
	return s
}

// trainProgress adapts the estimator's per-epoch hook onto the metrics
// registry: epoch counters by phase, current loss by expert, and an epoch
// duration histogram. Registration is idempotent, so calling this once per
// training run resolves to the same underlying series. The returned hook is
// called concurrently from expert-training goroutines; every operation in it
// is an atomic update.
func trainProgress(reg *obs.Registry) func(estimator.ProgressEvent) {
	epochs := reg.CounterVec("deeprest_train_epochs_total",
		"Completed training epochs by phase (train = recurrent trunks, attention = cross-component heads).",
		"phase")
	loss := reg.GaugeVec("deeprest_train_epoch_loss",
		"Mean pinball loss of the most recent completed epoch, per expert.",
		"pair")
	dur := reg.Histogram("deeprest_train_epoch_duration_seconds",
		"Wall-clock duration of one training epoch of one expert.",
		obs.DurationBuckets)
	return func(ev estimator.ProgressEvent) {
		epochs.With(ev.Phase).Inc()
		loss.With(ev.Pair).Set(ev.Loss)
		dur.Observe(ev.Duration.Seconds())
	}
}

func anonymizeWindows(h *trace.Hasher, windows [][]trace.Batch) [][]trace.Batch {
	out := make([][]trace.Batch, len(windows))
	for w, batches := range windows {
		out[w] = anonymizeBatches(h, batches)
	}
	return out
}

func anonymizeBatches(h *trace.Hasher, batches []trace.Batch) []trace.Batch {
	ab := make([]trace.Batch, len(batches))
	for i, b := range batches {
		ab[i] = trace.Batch{Trace: h.AnonymizeTrace(b.Trace), Count: b.Count}
	}
	return ab
}

// Model exposes the trained estimator, e.g. for interpretation reports and
// serialization.
func (s *System) Model() *estimator.Model { return s.model }

// Synthesizer exposes the learned trace synthesizer.
func (s *System) Synthesizer() *synth.Synthesizer { return s.synth }

// Pairs returns the estimation targets of the learned system.
func (s *System) Pairs() []app.Pair { return s.model.Pairs }

// EstimateTraffic is query Mode 1: given hypothetical API traffic, it
// synthesizes traces from Prob(path | API) and estimates the resources
// required to serve the traffic, per (component, resource) pair.
func (s *System) EstimateTraffic(t *workload.Traffic) (map[app.Pair]estimator.Estimate, error) {
	series, err := s.SynthesizeFeatures(t)
	if err != nil {
		return nil, err
	}
	return s.predictSeries(series)
}

// EstimateTrafficBatch runs Mode-1 queries for several hypothetical
// traffics as one coalesced engine pass: the closed-loop autoscaler asks
// "what will utilization be?" once per scheduling interval over a slightly
// different hybrid traffic (realized-so-far plus projected-remainder), and
// batching those forecasts amortises the per-pass weight traffic. With no
// compiled engine (or when the engine refuses a series shape) every series
// falls back to the tape path; both paths are bit-identical to calling
// EstimateTraffic per traffic.
func (s *System) EstimateTrafficBatch(ts []*workload.Traffic) ([]map[app.Pair]estimator.Estimate, error) {
	batch := make([][]features.Vector, len(ts))
	for i, t := range ts {
		series, err := s.SynthesizeFeatures(t)
		if err != nil {
			return nil, fmt.Errorf("core: batch traffic %d: %w", i, err)
		}
		batch[i] = series
	}
	if eng := s.engine.Load(); eng != nil {
		if out, err := eng.PredictBatch(batch); err == nil {
			return out, nil
		}
	}
	out := make([]map[app.Pair]estimator.Estimate, len(batch))
	for i, series := range batch {
		est, err := s.model.PredictVectors(series)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// SynthesizeFeatures runs the front half of a Mode-1 query: anonymisation,
// trace synthesis, and feature extraction. The request batcher uses it to
// prepare several requests' series before fanning them through the engine
// as one coalesced pass.
func (s *System) SynthesizeFeatures(t *workload.Traffic) ([]features.Vector, error) {
	qt := t
	if s.hasher != nil {
		qt = hashTrafficAPIs(s.hasher, t)
	}
	windows, err := s.synth.Synthesize(qt, s.opts.SynthSeed)
	if err != nil {
		return nil, fmt.Errorf("core: synthesize traces: %w", err)
	}
	return s.model.Space.ExtractSeries(windows), nil
}

// predictSeries routes a feature series through the tape-free engine when
// one is compiled, falling back to the eval-tape path otherwise (or when
// the engine refuses the series shape). Both paths are bit-identical.
func (s *System) predictSeries(series []features.Vector) (map[app.Pair]estimator.Estimate, error) {
	if eng := s.engine.Load(); eng != nil {
		if est, err := eng.Predict(series); err == nil {
			return est, nil
		}
	}
	return s.model.PredictVectors(series)
}

func hashTrafficAPIs(h *trace.Hasher, t *workload.Traffic) *workload.Traffic {
	out := &workload.Traffic{
		Windows:       make([]map[string]int, len(t.Windows)),
		WindowSeconds: t.WindowSeconds,
		WindowsPerDay: t.WindowsPerDay,
	}
	seen := make(map[string]bool)
	for w, m := range t.Windows {
		hm := make(map[string]int, len(m))
		for api, n := range m {
			ha := h.Hash(api)
			hm[ha] = n
			seen[ha] = true
		}
		out.Windows[w] = hm
	}
	for a := range seen {
		out.APIs = append(out.APIs, a)
	}
	return out
}

// ExpectedUtilization is the estimation half of query Mode 2: given the
// real traces the application served, it returns the utilization DeepRest
// expects per pair, with confidence intervals.
func (s *System) ExpectedUtilization(windows [][]trace.Batch) (map[app.Pair]estimator.Estimate, error) {
	if s.hasher != nil {
		windows = anonymizeWindows(s.hasher, windows)
	}
	return s.predictSeries(s.model.Space.ExtractSeries(windows))
}

// Extractor returns the function that maps one raw telemetry window to this
// system's feature space, applying anonymisation when the system was
// learned with it. It is what the telemetry store caches per-window feature
// vectors with (telemetry.Server.SetExtractor), so extraction happens once
// at ingest instead of on every query; vectors it produces feed the
// *Vectors query variants bit-identically to the trace-walking paths.
func (s *System) Extractor() func([]trace.Batch) features.Vector {
	sp := s.model.Space
	h := s.hasher
	return func(batches []trace.Batch) features.Vector {
		if h != nil {
			batches = anonymizeBatches(h, batches)
		}
		return sp.Extract(batches)
	}
}

// ExpectedUtilizationVectors is ExpectedUtilization over pre-extracted
// feature vectors (see Extractor); no further anonymisation is applied.
// It rides the tape-free engine like every serving read — which is how the
// shadow scorer in internal/quality inherits the speedup for free.
func (s *System) ExpectedUtilizationVectors(series []features.Vector) (map[app.Pair]estimator.Estimate, error) {
	return s.predictSeries(series)
}

// SanityCheckVectors is SanityCheck over pre-extracted feature vectors.
func (s *System) SanityCheckVectors(series []features.Vector, actual map[app.Pair][]float64, det *anomaly.Detector) ([]anomaly.Event, error) {
	expected, err := s.ExpectedUtilizationVectors(series)
	if err != nil {
		return nil, err
	}
	if det == nil {
		det = anomaly.NewDetector()
	}
	return det.Detect(actual, expected)
}

// SanityCheck is query Mode 2 end-to-end: it estimates the expected
// utilization for the served traces, compares the actual measurements
// against the expected intervals, and returns the anomalous events. det may
// be nil for default detection thresholds.
func (s *System) SanityCheck(windows [][]trace.Batch, actual map[app.Pair][]float64, det *anomaly.Detector) ([]anomaly.Event, error) {
	expected, err := s.ExpectedUtilization(windows)
	if err != nil {
		return nil, err
	}
	if det == nil {
		det = anomaly.NewDetector()
	}
	return det.Detect(actual, expected)
}

// Save serializes the learned estimator. The synthesizer is rebuilt from
// telemetry at load time via Learn; persisting raw trace distributions is
// intentionally avoided in anonymized deployments.
func (s *System) Save(w io.Writer) error { return s.model.Save(w) }
