package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testutil"
	"repro/internal/workload"
)

func testOptions() Options {
	opts := DefaultOptions()
	opts.Estimator.Hidden = 6
	opts.Estimator.Epochs = 10
	opts.Estimator.AttentionEpochs = 2
	opts.Estimator.ChunkLen = 24
	return opts
}

func TestLearnFromTelemetryServer(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 1)
	ts := telemetry.NewServer(run.WindowSeconds)
	ts.RecordRun(run)
	opts := testOptions()
	opts.Pairs = []app.Pair{
		{Component: "Service", Resource: app.CPU},
		{Component: "DB", Resource: app.WriteIOps},
	}
	sys, err := Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Pairs()); got != 2 {
		t.Fatalf("Pairs = %d, want 2", got)
	}
	if sys.Model() == nil || sys.Synthesizer() == nil {
		t.Fatal("accessors must be non-nil")
	}
}

func TestLearnBadRange(t *testing.T) {
	ts := telemetry.NewServer(60)
	if _, err := Learn(ts, 0, 5, DefaultOptions()); err == nil {
		t.Fatal("out-of-range learn must fail")
	}
}

func TestEstimateTrafficMode1(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 3, 40, 2)
	opts := testOptions()
	p := app.Pair{Component: "DB", Resource: app.CPU}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	query := testutil.ToyProgram(1, 60, 55).Generate()
	truth, err := cluster.Run(query)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateTraffic(query)
	if err != nil {
		t.Fatal(err)
	}
	mape := eval.MAPE(est[p].Exp, truth.Usage[p])
	t.Logf("Mode-1 MAPE: %.2f%%", mape)
	if mape > 25 {
		t.Errorf("Mode-1 estimation MAPE %.2f%% too high", mape)
	}
}

func TestSanityCheckMode2(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 3, 40, 3)
	opts := testOptions()
	cpu := app.Pair{Component: "DB", Resource: app.CPU}
	mem := app.Pair{Component: "DB", Resource: app.Memory}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, cpu, mem), opts)
	if err != nil {
		t.Fatal(err)
	}
	check := testutil.ToyProgram(1, 40, 77).Generate()
	from := cluster.Window() + 20
	cluster.Inject(sim.Cryptojack{Component: "DB", FromWindow: from, ToWindow: from + 12, ExtraCPU: 60})
	truth, err := cluster.Run(check)
	if err != nil {
		t.Fatal(err)
	}
	actual := map[app.Pair][]float64{cpu: truth.Usage[cpu], mem: truth.Usage[mem]}
	events, err := sys.SanityCheck(truth.Windows, actual, anomaly.NewDetector())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("cryptojack not detected")
	}
	ev := events[0]
	if ev.Component != "DB" {
		t.Errorf("event component = %s", ev.Component)
	}
	if ev.From > 20 || ev.To < 28 {
		t.Errorf("event [%d, %d) misses attack [20, 32)", ev.From, ev.To)
	}
}

// TestSanityCheckCleanNoAlarms runs the Mode-2 check on benign traffic.
func TestSanityCheckCleanNoAlarms(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 3, 40, 6)
	opts := testOptions()
	cpu := app.Pair{Component: "Service", Resource: app.CPU}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, cpu), opts)
	if err != nil {
		t.Fatal(err)
	}
	check := testutil.ToyProgram(1, 40, 88).Generate()
	truth, err := cluster.Run(check)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sys.SanityCheck(truth.Windows, map[app.Pair][]float64{cpu: truth.Usage[cpu]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("false alarms on benign traffic: %+v", events)
	}
}

func TestAnonymizedLearning(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 2, 30, 4)
	opts := testOptions()
	opts.Anonymize = true
	opts.HashSalt = "secret"
	p := app.Pair{Component: "DB", Resource: app.CPU}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	// No plaintext component names may appear in the feature space.
	for _, path := range sys.Model().Space.Paths() {
		if strings.Contains(path, "Gateway") || strings.Contains(path, "DB") {
			t.Fatalf("plaintext name leaked into feature space: %q", path)
		}
	}
	// Mode-1 queries still work: API names are hashed on the way in.
	query := testutil.ToyProgram(1, 45, 66).Generate()
	truth, err := cluster.Run(query)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateTraffic(query)
	if err != nil {
		t.Fatal(err)
	}
	mape := eval.MAPE(est[p].Exp, truth.Usage[p])
	t.Logf("anonymized Mode-1 MAPE: %.2f%%", mape)
	if mape > 25 {
		t.Errorf("anonymized estimation degraded: %.2f%%", mape)
	}
}

func TestSystemSaveLoad(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 5)
	opts := testOptions()
	p := app.Pair{Component: "Service", Resource: app.CPU}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := estimator.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.Model().Predict(run.Windows)
	b, _ := m.Predict(run.Windows)
	for i := range a[p].Exp {
		if a[p].Exp[i] != b[p].Exp[i] {
			t.Fatal("loaded model diverges")
		}
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 20, 7)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	// Zero-value estimator config must be replaced by defaults.
	var opts Options
	opts.Pairs = []app.Pair{p}
	opts.Estimator.Epochs = 0
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Model().Cfg.Hidden == 0 {
		t.Error("default config not applied")
	}
}

// TestLearnsThirdApplication is the generality check behind the paper's
// "serve any hosted application" claim (§3): the same pipeline, untouched,
// learns the media-microservices application.
func TestLearnsThirdApplication(t *testing.T) {
	spec := app.MediaMicroservices()
	cluster, err := sim.NewCluster(spec, 61)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Uniform(2, workload.DaySpec{
		Shape:   workload.TwoPeak{},
		Mix:     app.MediaDefaultMix(),
		PeakRPS: 30,
	})
	prog.WindowsPerDay = 48
	prog.WindowSeconds = 60
	traffic := prog.Generate()
	run, err := cluster.Run(traffic)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	review := app.Pair{Component: "ReviewMongoDB", Resource: app.WriteIOps}
	stream := app.Pair{Component: "VideoStreamingService", Resource: app.CPU}
	opts.Pairs = []app.Pair{review, stream}
	sys, err := LearnFromData(run.Windows, map[app.Pair][]float64{
		review: run.Usage[review],
		stream: run.Usage[stream],
	}, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Query an unseen 2x day and check both estimates track reality.
	qp := prog
	qp.Days = prog.Days[:1]
	qp.Days[0].PeakRPS = 60
	qp.Seed = 62
	query := qp.Generate()
	truth, err := cluster.Run(query)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateTraffic(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range opts.Pairs {
		mape := eval.MAPE(est[p].Exp, truth.Usage[p])
		t.Logf("%s: MAPE=%.2f%%", p, mape)
		if mape > 30 {
			t.Errorf("%s: MAPE %.2f%% too high on the third application", p, mape)
		}
	}
}

// TestAnonymizationIsLossless verifies the paper's privacy claim sharply:
// hashing component/operation/API names is a pure renaming, so a model
// trained on anonymized telemetry must predict *identically* to one trained
// on plaintext telemetry (feature indices depend only on trace structure
// and order, which hashing preserves).
func TestAnonymizationIsLossless(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 71)
	p := app.Pair{Component: "DB", Resource: app.CPU}
	usage := testutil.FocusPairs(run.Usage, p)

	plain := testOptions()
	anon := testOptions()
	anon.Anonymize = true
	anon.HashSalt = "salt"

	sysPlain, err := LearnFromData(run.Windows, usage, plain)
	if err != nil {
		t.Fatal(err)
	}
	sysAnon, err := LearnFromData(run.Windows, usage, anon)
	if err != nil {
		t.Fatal(err)
	}
	query := testutil.ToyProgram(1, 45, 72).Generate()
	ea, err := sysPlain.EstimateTraffic(query)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := sysAnon.EstimateTraffic(query)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ea[p].Exp {
		if ea[p].Exp[i] != eb[p].Exp[i] {
			t.Fatalf("window %d: plaintext %.12f vs anonymized %.12f — hashing must be lossless",
				i, ea[p].Exp[i], eb[p].Exp[i])
		}
	}
}

// TestEstimateTrafficBatchMatchesSingle pins the batch entry point's
// bit-identity contract on both serving paths: a coalesced engine pass and
// the tape fallback must each return exactly what per-traffic
// EstimateTraffic calls would.
func TestEstimateTrafficBatchMatchesSingle(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 5)
	p := app.Pair{Component: "DB", Resource: app.CPU}
	sys, err := LearnFromData(run.Windows, testutil.FocusPairs(run.Usage, p), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := []*workload.Traffic{
		testutil.ToyProgram(1, 40, 6).Generate(),
		testutil.ToyProgram(1, 55, 7).Generate(),
		testutil.ToyProgram(1, 25, 8).Generate(),
	}
	check := func(path string) {
		batch, err := sys.EstimateTrafficBatch(queries)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("%s: %d results for %d queries", path, len(batch), len(queries))
		}
		for i, q := range queries {
			single, err := sys.EstimateTraffic(q)
			if err != nil {
				t.Fatal(err)
			}
			for w := range single[p].Exp {
				if batch[i][p].Exp[w] != single[p].Exp[w] || batch[i][p].Up[w] != single[p].Up[w] {
					t.Fatalf("%s: query %d window %d: batch (%.12f,%.12f) != single (%.12f,%.12f)",
						path, i, w, batch[i][p].Exp[w], batch[i][p].Up[w], single[p].Exp[w], single[p].Up[w])
				}
			}
		}
	}
	if sys.Engine() == nil {
		t.Fatal("expected a compiled inference engine after LearnFromData")
	}
	check("engine")
	sys.ReleaseEngine()
	check("tape")

	if out, err := sys.EstimateTrafficBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
}
