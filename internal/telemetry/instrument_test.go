package telemetry

import (
	"testing"

	"repro/internal/app"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// window returns a WindowResult with one two-span trace served `count` times.
func window(count int) sim.WindowResult {
	root := trace.NewSpan("A", "op")
	root.Child("B", "sub")
	return sim.WindowResult{
		Batches: []trace.Batch{{Trace: trace.Trace{API: "/x", Root: root}, Count: count}},
		Usage:   sim.Usage{app.Pair{Component: "A", Resource: app.CPU}: 1},
	}
}

func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name, helpFor(name)).Value()
}

func helpFor(name string) string {
	switch name {
	case "deeprest_telemetry_windows_total":
		return "Telemetry windows ingested into the store."
	case "deeprest_telemetry_spans_total":
		return "Trace spans ingested (batches expanded by request count)."
	default:
		return "Traced requests ingested."
	}
}

func TestInstrumentCountsIngestion(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(60)
	// One window before instrumentation: must be back-counted at attach.
	s.Record(window(3))
	s.Instrument(reg)
	if got := counterValue(t, reg, "deeprest_telemetry_windows_total"); got != 1 {
		t.Fatalf("windows after attach = %d, want 1", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_spans_total"); got != 6 {
		t.Fatalf("spans after attach = %d, want 6 (2 spans × 3 requests)", got)
	}

	// Live recording counts windows, spans (×count), and requests.
	s.Record(window(5))
	if got := counterValue(t, reg, "deeprest_telemetry_windows_total"); got != 2 {
		t.Fatalf("windows = %d, want 2", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_spans_total"); got != 16 {
		t.Fatalf("spans = %d, want 16", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_requests_total"); got != 8 {
		t.Fatalf("requests = %d, want 8", got)
	}

	// RecordRun counts every window of the run.
	run := &sim.Run{
		Windows:       [][]trace.Batch{window(1).Batches, window(2).Batches},
		Usage:         map[app.Pair][]float64{{Component: "A", Resource: app.CPU}: {1, 2}},
		WindowSeconds: 60,
	}
	s.RecordRun(run)
	if got := counterValue(t, reg, "deeprest_telemetry_windows_total"); got != 4 {
		t.Fatalf("windows after run = %d, want 4", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_spans_total"); got != 22 {
		t.Fatalf("spans after run = %d, want 22", got)
	}
}

func TestUninstrumentedServerIsNoOp(t *testing.T) {
	s := NewServer(60)
	s.Instrument(nil) // must not panic or allocate counters
	s.Record(window(2))
	if s.NumWindows() != 1 {
		t.Fatalf("NumWindows = %d", s.NumWindows())
	}
}

func TestInstrumentIsIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(60)
	s.Record(window(3))
	s.Instrument(reg)
	// A second attach must not back-count the resident windows again.
	s.Instrument(reg)
	if got := counterValue(t, reg, "deeprest_telemetry_windows_total"); got != 1 {
		t.Fatalf("windows after double attach = %d, want 1 (Instrument double-counted)", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_spans_total"); got != 6 {
		t.Fatalf("spans after double attach = %d, want 6 (Instrument double-counted)", got)
	}
	if got := counterValue(t, reg, "deeprest_telemetry_requests_total"); got != 3 {
		t.Fatalf("requests after double attach = %d, want 3 (Instrument double-counted)", got)
	}
	// Live recording still counts exactly once per window.
	s.Record(window(5))
	if got := counterValue(t, reg, "deeprest_telemetry_windows_total"); got != 2 {
		t.Fatalf("windows after record = %d, want 2", got)
	}
}
