package telemetry

import (
	"testing"

	"repro/internal/features"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchWindow builds a moderately wide window: 8 distinct traces of 4 spans
// each, a plausible per-minute scrape for a small deployment.
func benchWindow() sim.WindowResult {
	var batches []trace.Batch
	apis := []string{"/read", "/write", "/list", "/search", "/login", "/cart", "/pay", "/ship"}
	for i, api := range apis {
		root := trace.NewSpan("Gateway", api)
		svc := root.Child("Service", api)
		svc.Child("Cache", "get")
		svc.Child("DB", "query")
		batches = append(batches, trace.Batch{
			Trace: trace.Trace{API: api, Root: root},
			Count: 10 + i,
		})
	}
	return sim.WindowResult{Batches: batches, Usage: sim.Usage{cpuA: 1}}
}

func benchSpace() *features.Space {
	w := benchWindow()
	return NewSpaceFromWindow(w.Batches)
}

// NewSpaceFromWindow is a tiny helper so benchmarks build the space from a
// window shape rather than repeating the conversion inline.
func NewSpaceFromWindow(batches []trace.Batch) *features.Space {
	traces := make([]trace.Trace, len(batches))
	for i, b := range batches {
		traces[i] = b.Trace
	}
	return features.NewSpaceFromTraces(traces)
}

// BenchmarkRecord measures steady-state ingestion into a bounded store with
// an installed extractor: one window in, one evicted, features extracted at
// Record time. This is the cost the paper's "streaming telemetry" mode pays
// per scrape — it must stay O(window), independent of history length.
func BenchmarkRecord(b *testing.B) {
	sp := benchSpace()
	s := NewServer(60)
	s.SetRetention(256)
	s.SetExtractor(1, sp.Extract)
	w := benchWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(w)
	}
}

// BenchmarkRecordUnbounded is the same ingest without retention or an
// extractor — the seed store's behaviour — for comparison in BENCH_ingest.
func BenchmarkRecordUnbounded(b *testing.B) {
	s := NewServer(60)
	w := benchWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(w)
	}
}

// BenchmarkFeaturesCached reads a feature range that was extracted at
// Record time: pure cache hits, no trace walking.
func BenchmarkFeaturesCached(b *testing.B) {
	sp := benchSpace()
	s := NewServer(60)
	s.SetExtractor(1, sp.Extract)
	const n = 64
	for i := 0; i < n; i++ {
		s.Record(benchWindow())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Features(1, sp.Extract, 0, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturesUncached extracts the same range from raw traces every
// iteration — what every /v1/estimate and drift check paid before the
// feature cache.
func BenchmarkFeaturesUncached(b *testing.B) {
	sp := benchSpace()
	s := NewServer(60)
	const n = 64
	for i := 0; i < n; i++ {
		s.Record(benchWindow())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows, err := s.Traces(0, n)
		if err != nil {
			b.Fatal(err)
		}
		_ = sp.ExtractSeries(windows)
	}
}
