package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file adapts the JSON formats emitted by the telemetry stack the
// paper actually deploys — Jaeger's HTTP trace API and Prometheus's range
// query API — into the windowed store DeepRest learns from, so the system
// can be pointed at a real cluster's exports without custom glue.

// --- Jaeger ---

// jaegerDump mirrors the envelope of GET /api/traces.
type jaegerDump struct {
	Data []jaegerTrace `json:"data"`
}

type jaegerTrace struct {
	TraceID   string                   `json:"traceID"`
	Spans     []jaegerSpan             `json:"spans"`
	Processes map[string]jaegerProcess `json:"processes"`
}

type jaegerSpan struct {
	SpanID        string            `json:"spanID"`
	OperationName string            `json:"operationName"`
	StartTime     int64             `json:"startTime"` // microseconds since epoch
	ProcessID     string            `json:"processID"`
	References    []jaegerReference `json:"references"`
}

type jaegerReference struct {
	RefType string `json:"refType"`
	SpanID  string `json:"spanID"`
}

type jaegerProcess struct {
	ServiceName string `json:"serviceName"`
}

// ImportJaegerTraces converts a Jaeger trace dump into per-window trace
// batches. Traces are bucketed by their root span's start time relative to
// `start`; traces outside [start, start + numWindows·window) are dropped.
// The API name of a trace is its root span's operation name (the paper's
// entry components name operations after the endpoint, e.g.
// FrontendNGINX:readTimeline).
func ImportJaegerTraces(r io.Reader, start time.Time, windowSeconds float64, numWindows int) ([][]trace.Batch, error) {
	if windowSeconds <= 0 || numWindows <= 0 {
		return nil, fmt.Errorf("telemetry: invalid window geometry %v x %d", windowSeconds, numWindows)
	}
	var dump jaegerDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("telemetry: decode jaeger dump: %w", err)
	}
	// Aggregate identical shapes per window as batches.
	type key struct {
		w   int
		sig string
	}
	counts := make(map[key]int)
	shapes := make(map[key]trace.Trace)
	for ti, jt := range dump.Data {
		root, err := buildJaegerTree(jt)
		if err != nil {
			return nil, fmt.Errorf("telemetry: trace %d (%s): %w", ti, jt.TraceID, err)
		}
		if root == nil {
			continue
		}
		rootStart := time.UnixMicro(rootStartMicros(jt))
		w := int(math.Floor(rootStart.Sub(start).Seconds() / windowSeconds))
		if w < 0 || w >= numWindows {
			continue
		}
		tr := trace.Trace{API: "/" + root.Operation, Root: root}
		k := key{w, signatureOf(root)}
		counts[k]++
		if _, ok := shapes[k]; !ok {
			shapes[k] = tr
		}
	}
	out := make([][]trace.Batch, numWindows)
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].w != keys[j].w {
			return keys[i].w < keys[j].w
		}
		return keys[i].sig < keys[j].sig
	})
	for _, k := range keys {
		out[k.w] = append(out[k.w], trace.Batch{Trace: shapes[k], Count: counts[k]})
	}
	return out, nil
}

// buildJaegerTree assembles the span tree of one Jaeger trace from its
// CHILD_OF references.
func buildJaegerTree(jt jaegerTrace) (*trace.Span, error) {
	if len(jt.Spans) == 0 {
		return nil, nil
	}
	nodes := make(map[string]*trace.Span, len(jt.Spans))
	parent := make(map[string]string, len(jt.Spans))
	order := make(map[string]int64, len(jt.Spans))
	for _, js := range jt.Spans {
		proc, ok := jt.Processes[js.ProcessID]
		if !ok {
			return nil, fmt.Errorf("span %s references unknown process %q", js.SpanID, js.ProcessID)
		}
		nodes[js.SpanID] = trace.NewSpan(proc.ServiceName, js.OperationName)
		order[js.SpanID] = js.StartTime
		for _, ref := range js.References {
			if ref.RefType == "CHILD_OF" {
				parent[js.SpanID] = ref.SpanID
			}
		}
	}
	var root *trace.Span
	rootCount := 0
	children := make(map[string][]string)
	for id := range nodes {
		pid, ok := parent[id]
		if !ok || nodes[pid] == nil {
			root = nodes[id]
			rootCount++
			continue
		}
		children[pid] = append(children[pid], id)
	}
	if rootCount != 1 {
		return nil, fmt.Errorf("trace has %d root spans, want 1", rootCount)
	}
	// Attach children in start-time order, depth first.
	var attach func(id string)
	attach = func(id string) {
		kids := children[id]
		sort.Slice(kids, func(i, j int) bool {
			if order[kids[i]] != order[kids[j]] {
				return order[kids[i]] < order[kids[j]]
			}
			return kids[i] < kids[j]
		})
		for _, c := range kids {
			nodes[id].Children = append(nodes[id].Children, nodes[c])
			attach(c)
		}
	}
	for id, n := range nodes {
		if n == root {
			attach(id)
			break
		}
	}
	return root, nil
}

func rootStartMicros(jt jaegerTrace) int64 {
	min := int64(math.MaxInt64)
	for _, s := range jt.Spans {
		if s.StartTime < min {
			min = s.StartTime
		}
	}
	return min
}

func signatureOf(s *trace.Span) string {
	sig := s.ID()
	if len(s.Children) > 0 {
		sig += "("
		for i, c := range s.Children {
			if i > 0 {
				sig += ","
			}
			sig += signatureOf(c)
		}
		sig += ")"
	}
	return sig
}

// --- Prometheus ---

// promResponse mirrors /api/v1/query_range with resultType "matrix".
type promResponse struct {
	Status string   `json:"status"`
	Data   promData `json:"data"`
}

type promData struct {
	ResultType string       `json:"resultType"`
	Result     []promSeries `json:"result"`
}

type promSeries struct {
	Metric map[string]string `json:"metric"`
	Values []promPoint       `json:"values"`
}

// promPoint is Prometheus's [unix_seconds, "value"] pair.
type promPoint struct {
	TS  float64
	Val float64
}

// UnmarshalJSON decodes the heterogeneous [ts, "value"] array.
func (p *promPoint) UnmarshalJSON(b []byte) error {
	var raw [2]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if err := json.Unmarshal(raw[0], &p.TS); err != nil {
		return err
	}
	var s string
	if err := json.Unmarshal(raw[1], &s); err != nil {
		return err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("parse sample value %q: %w", s, err)
	}
	p.Val = v
	return nil
}

// MetricMapping maps one Prometheus series' labels to the estimation target
// it measures. Return false to skip the series. A typical mapping reads the
// container label and the metric name, e.g. container_cpu_usage →
// {Component: labels["container"], Resource: app.CPU}.
type MetricMapping func(labels map[string]string) (app.Pair, bool)

// StandardMetricMapping maps series with labels {component, resource} —
// the convention of this repository's exporters.
func StandardMetricMapping(labels map[string]string) (app.Pair, bool) {
	comp := labels["component"]
	res := labels["resource"]
	if comp == "" || res == "" {
		return app.Pair{}, false
	}
	r, err := app.ParseResource(res)
	if err != nil {
		return app.Pair{}, false
	}
	return app.Pair{Component: comp, Resource: r}, true
}

// ImportPrometheusMatrix converts a range-query response into per-window
// mean utilization series. Samples outside the window range are dropped;
// windows without samples hold 0.
func ImportPrometheusMatrix(r io.Reader, start time.Time, windowSeconds float64, numWindows int, mapping MetricMapping) (map[app.Pair][]float64, error) {
	if windowSeconds <= 0 || numWindows <= 0 {
		return nil, fmt.Errorf("telemetry: invalid window geometry %v x %d", windowSeconds, numWindows)
	}
	if mapping == nil {
		mapping = StandardMetricMapping
	}
	var resp promResponse
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return nil, fmt.Errorf("telemetry: decode prometheus response: %w", err)
	}
	if resp.Status != "success" {
		return nil, fmt.Errorf("telemetry: prometheus status %q", resp.Status)
	}
	if resp.Data.ResultType != "matrix" {
		return nil, fmt.Errorf("telemetry: prometheus resultType %q, want matrix", resp.Data.ResultType)
	}
	out := make(map[app.Pair][]float64)
	countsFor := make(map[app.Pair][]int)
	startSec := float64(start.UnixNano()) / 1e9
	for _, series := range resp.Data.Result {
		p, ok := mapping(series.Metric)
		if !ok {
			continue
		}
		if out[p] == nil {
			out[p] = make([]float64, numWindows)
			countsFor[p] = make([]int, numWindows)
		}
		for _, pt := range series.Values {
			w := int(math.Floor((pt.TS - startSec) / windowSeconds))
			if w < 0 || w >= numWindows {
				continue
			}
			out[p][w] += pt.Val
			countsFor[p][w]++
		}
	}
	for p, series := range out {
		for w := range series {
			if c := countsFor[p][w]; c > 0 {
				series[w] /= float64(c)
			}
		}
	}
	return out, nil
}

// BuildServer assembles an importable window set plus metric series into a
// telemetry server ready for core.Learn.
func BuildServer(windowSeconds float64, windows [][]trace.Batch, usage map[app.Pair][]float64) (*Server, error) {
	for p, series := range usage {
		if len(series) != len(windows) {
			return nil, fmt.Errorf("telemetry: %s has %d samples for %d windows", p, len(series), len(windows))
		}
	}
	s := NewServer(windowSeconds)
	for i, batches := range windows {
		wr := sim.WindowResult{Batches: batches, Usage: make(sim.Usage, len(usage))}
		for p, series := range usage {
			wr.Usage[p] = series[i]
		}
		s.Record(wr)
	}
	return s, nil
}
