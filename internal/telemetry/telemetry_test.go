package telemetry

import (
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func TestRecordAndQuery(t *testing.T) {
	s := NewServer(60)
	if s.WindowSeconds() != 60 {
		t.Fatal("WindowSeconds not stored")
	}
	p := app.Pair{Component: "A", Resource: app.CPU}
	for i := 0; i < 4; i++ {
		s.Record(sim.WindowResult{
			Batches: []trace.Batch{{Trace: trace.Trace{API: "/x", Root: trace.NewSpan("A", "op")}, Count: i + 1}},
			Usage:   sim.Usage{p: float64(10 * i)},
		})
	}
	if s.NumWindows() != 4 {
		t.Fatalf("NumWindows = %d", s.NumWindows())
	}
	m, err := s.Metric(p, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0] != 10 || m[1] != 20 {
		t.Fatalf("Metric = %v", m)
	}
	traces, err := s.Traces(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 || traces[3][0].Count != 4 {
		t.Fatalf("Traces = %v", traces)
	}
	all, err := s.Metrics(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all[p]) != 4 {
		t.Fatalf("Metrics = %v", all)
	}
	if got := s.Pairs(); len(got) != 1 || got[0] != p {
		t.Fatalf("Pairs = %v", got)
	}
}

func TestRangeValidation(t *testing.T) {
	s := NewServer(60)
	s.Record(sim.WindowResult{Usage: sim.Usage{}})
	if _, err := s.Traces(0, 2); err == nil {
		t.Error("out-of-range Traces must fail")
	}
	if _, err := s.Metric(app.Pair{Component: "A"}, -1, 1); err == nil {
		t.Error("negative from must fail")
	}
	if _, err := s.Metric(app.Pair{Component: "A"}, 1, 0); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := s.Metric(app.Pair{Component: "ghost"}, 0, 1); err == nil {
		t.Error("unknown pair must fail")
	}
}

func TestRecordRunMatchesPerWindowRecord(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 20, 3)
	bulk := NewServer(run.WindowSeconds)
	bulk.RecordRun(run)
	if bulk.NumWindows() != run.NumWindows() {
		t.Fatalf("NumWindows = %d, want %d", bulk.NumWindows(), run.NumWindows())
	}
	p := app.Pair{Component: "DB", Resource: app.CPU}
	m, err := bulk.Metric(p, 0, run.NumWindows())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range run.Series(p) {
		if m[i] != v {
			t.Fatalf("window %d: %v vs %v", i, m[i], v)
		}
	}
}

// TestLateMetricBackfill: a pair first reported mid-stream gets zero-padded
// history so all series stay aligned.
func TestLateMetricBackfill(t *testing.T) {
	s := NewServer(60)
	a := app.Pair{Component: "A", Resource: app.CPU}
	b := app.Pair{Component: "B", Resource: app.CPU}
	s.Record(sim.WindowResult{Usage: sim.Usage{a: 1}})
	s.Record(sim.WindowResult{Usage: sim.Usage{a: 2, b: 5}})
	m, err := s.Metric(b, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 0 || m[1] != 5 {
		t.Fatalf("backfilled series = %v", m)
	}
}

// A pair absent from newly recorded windows must be zero-padded, not left
// short: full-range reads and eviction slice every series by trace-ring
// offsets and used to panic when telemetry from a different pair set (e.g.
// another application's export) was ingested on top of an existing store.
func TestAbsentMetricPadding(t *testing.T) {
	s := NewServer(60)
	a := app.Pair{Component: "A", Resource: app.CPU}
	b := app.Pair{Component: "B", Resource: app.CPU}
	s.Record(sim.WindowResult{Usage: sim.Usage{a: 1}})
	s.Record(sim.WindowResult{Usage: sim.Usage{b: 5}})
	s.Record(sim.WindowResult{Usage: sim.Usage{}})
	m, err := s.Metric(a, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 1 || m[1] != 0 || m[2] != 0 {
		t.Fatalf("padded series = %v", m)
	}
	all, err := s.Metrics(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all[a]) != 3 || len(all[b]) != 3 {
		t.Fatalf("series lengths = %d, %d, want 3, 3", len(all[a]), len(all[b]))
	}

	// Eviction re-slices every series by the same offset; a short series
	// used to panic here too.
	s.SetRetention(2)
	s.Record(sim.WindowResult{Usage: sim.Usage{}})
	if m, err = s.Metric(b, s.OldestWindow(), s.NumWindows()); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("post-eviction series = %v", m)
	}
}

func TestQueryCopiesData(t *testing.T) {
	s := NewServer(60)
	p := app.Pair{Component: "A", Resource: app.CPU}
	s.Record(sim.WindowResult{Usage: sim.Usage{p: 7}})
	m, _ := s.Metric(p, 0, 1)
	m[0] = 999
	m2, _ := s.Metric(p, 0, 1)
	if m2[0] != 7 {
		t.Fatal("Metric must return a copy")
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	s := NewServer(60)
	p := app.Pair{Component: "A", Resource: app.CPU}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Record(sim.WindowResult{Usage: sim.Usage{p: float64(i)}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n := s.NumWindows()
			if n > 0 {
				if _, err := s.Metric(p, 0, n); err != nil {
					t.Errorf("Metric: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if s.NumWindows() != 200 {
		t.Fatalf("NumWindows = %d", s.NumWindows())
	}
}
