// Package telemetry is the in-cluster observability stand-in for the
// paper's Jaeger + Prometheus deployment: a windowed store of distributed
// traces and resource metrics that DeepRest queries during the application
// learning phase and at sanity-check time.
//
// The store is safe for concurrent use: a scraper goroutine can Record
// windows while DeepRest reads ranges.
//
// # Retention
//
// A long-running deployment cannot append windows forever. With a retention
// horizon set (SetRetention), the store behaves as a ring buffer over
// windows: once more than `retention` windows are resident, the oldest are
// evicted — traces and every metric series drop the same windows in
// lockstep, so ranges stay aligned. Window indices are absolute and
// monotone: NumWindows keeps counting every window ever recorded, and
// OldestWindow reports the first index still resident. Reads below the
// horizon fail with a range error instead of silently returning shifted
// data.
//
// # Incremental feature extraction
//
// Re-walking every span of every retained trace on each query is the other
// unbounded cost of a naive store. With an extractor installed
// (SetExtractor), each window's feature vector is computed once — at Record
// time, before the store lock is taken — and cached alongside the raw
// batches, keyed by the model generation whose feature space produced it.
// Features serves ranges from that cache and lazily re-extracts only the
// windows whose cached generation does not match (e.g. after a
// continuous-learning generation swap installed a new feature space).
package telemetry

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Extractor turns one window of trace batches into its feature vector. The
// continuous-learning pipeline installs the active generation's extractor
// (feature space plus optional anonymisation) via SetExtractor.
//
// It is an alias, not a defined type: pipeline.FeatureSource declares its
// methods against the literal func type, and a defined type here would
// make Server's method set silently fail that interface assertion.
type Extractor = func([]trace.Batch) features.Vector

// featEntry is the cached feature vector of one resident window.
type featEntry struct {
	// gen identifies the feature space (model generation) that produced
	// vec; a read for a different generation re-extracts.
	gen int
	vec features.Vector
	ok  bool
}

// Server stores aligned windows of trace batches and resource metrics.
type Server struct {
	mu            sync.RWMutex
	windowSeconds float64

	// retention bounds resident windows (0 = unbounded); base is the
	// absolute index of the oldest resident window. traces[i], feats[i],
	// and metrics[p][i] all describe absolute window base+i.
	retention int
	base      int
	traces    [][]trace.Batch
	feats     []featEntry
	metrics   map[app.Pair][]float64

	// extractor powers eager Record-time feature extraction; extractorGen
	// keys the cache entries it produces.
	extractor    Extractor
	extractorGen int

	// Ingestion metrics; nil (no-op) until Instrument is called.
	instrumented  bool
	windowsTotal  *obs.Counter
	spansTotal    *obs.Counter
	requestsTotal *obs.Counter
	evictedTotal  *obs.Counter
	residentGauge *obs.Gauge
	extractsTotal *obs.Counter

	// tracer records "telemetry.extract" stage spans around eager
	// Record-time feature extraction (nil-safe no-op).
	tracer *obs.SpanTracer
}

// Instrument registers ingestion-volume counters on reg and counts every
// window currently resident in the store, so attaching after an import loses
// nothing. A nil registry leaves the server uninstrumented (the counters
// stay no-op). Instrument is idempotent: repeated calls keep the handles of
// the first call and never re-add the resident windows to the counters.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.instrumented {
		return
	}
	s.instrumented = true
	s.windowsTotal = reg.Counter("deeprest_telemetry_windows_total",
		"Telemetry windows ingested into the store.")
	s.spansTotal = reg.Counter("deeprest_telemetry_spans_total",
		"Trace spans ingested (batches expanded by request count).")
	s.requestsTotal = reg.Counter("deeprest_telemetry_requests_total",
		"Traced requests ingested.")
	s.evictedTotal = reg.Counter("deeprest_telemetry_evicted_total",
		"Telemetry windows evicted past the retention horizon.")
	s.residentGauge = reg.Gauge("deeprest_telemetry_resident_windows",
		"Telemetry windows currently resident in the store.")
	s.extractsTotal = reg.Counter("deeprest_telemetry_feature_extractions_total",
		"Window feature extractions performed (Record-time plus cache fills).")
	s.windowsTotal.Add(uint64(len(s.traces)))
	for _, batches := range s.traces {
		wr := sim.WindowResult{Batches: batches}
		s.spansTotal.Add(uint64(wr.NumSpans()))
		s.requestsTotal.Add(uint64(wr.NumRequests()))
	}
	s.residentGauge.Set(float64(len(s.traces)))
}

// SetTracer installs the stage tracer recording feature-extraction spans.
func (s *Server) SetTracer(tr *obs.SpanTracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

// NewServer returns an empty, unbounded telemetry server with the given
// scrape window duration in seconds.
func NewServer(windowSeconds float64) *Server {
	return &Server{
		windowSeconds: windowSeconds,
		metrics:       make(map[app.Pair][]float64),
	}
}

// WindowSeconds returns the scrape window duration.
func (s *Server) WindowSeconds() float64 {
	return s.windowSeconds
}

// SetRetention bounds the store to the most recent n windows (0 restores
// unbounded growth). If more than n windows are already resident the oldest
// are evicted immediately.
func (s *Server) SetRetention(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.retention = n
	s.evictLocked()
}

// Retention returns the configured retention horizon (0 = unbounded).
func (s *Server) Retention() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retention
}

// SetExtractor installs the feature extractor used for eager extraction at
// Record time; gen identifies the feature space (model generation) so later
// Features reads can tell cached vectors of an old generation from current
// ones. A nil fn disables eager extraction.
func (s *Server) SetExtractor(gen int, fn Extractor) {
	s.mu.Lock()
	s.extractorGen, s.extractor = gen, fn
	s.mu.Unlock()
}

// ExtractorGen reports the generation of the installed Record-time
// extractor (0 when none was ever installed).
func (s *Server) ExtractorGen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.extractorGen
}

// Record appends one window of telemetry. With an extractor installed the
// window's feature vector is computed here — once, outside the store lock —
// so queries never have to re-walk the trace batches. The whole call is
// O(window): appending is amortised O(1) and eviction drops at most one
// window.
func (s *Server) Record(wr sim.WindowResult) {
	s.mu.RLock()
	gen, fn, tr := s.extractorGen, s.extractor, s.tracer
	s.mu.RUnlock()
	fe := featEntry{}
	if fn != nil {
		_, span := tr.Start(context.Background(), "telemetry.extract")
		span.SetWindows(1)
		fe = featEntry{gen: gen, vec: fn(wr.Batches), ok: true}
		span.End()
		s.extractsTotal.Inc()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	idx := len(s.traces)
	s.traces = append(s.traces, wr.Batches)
	s.feats = append(s.feats, fe)
	s.windowsTotal.Inc()
	s.spansTotal.Add(uint64(wr.NumSpans()))
	s.requestsTotal.Add(uint64(wr.NumRequests()))
	for p, v := range wr.Usage {
		series, ok := s.metrics[p]
		if !ok {
			series = make([]float64, idx)
		}
		for len(series) < idx {
			series = append(series, 0)
		}
		s.metrics[p] = append(series, v)
	}
	s.padMetricsLocked(idx + 1)
	s.evictLocked()
}

// RecordRun appends every window of a simulation run.
func (s *Server) RecordRun(r *sim.Run) {
	s.mu.RLock()
	gen, fn, tr := s.extractorGen, s.extractor, s.tracer
	s.mu.RUnlock()
	fes := make([]featEntry, len(r.Windows))
	if fn != nil {
		_, span := tr.Start(context.Background(), "telemetry.extract")
		span.SetWindows(len(r.Windows))
		for i, w := range r.Windows {
			fes[i] = featEntry{gen: gen, vec: fn(w), ok: true}
		}
		span.End()
		s.extractsTotal.Add(uint64(len(r.Windows)))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	base := len(s.traces)
	s.traces = append(s.traces, r.Windows...)
	s.feats = append(s.feats, fes...)
	s.windowsTotal.Add(uint64(len(r.Windows)))
	s.spansTotal.Add(uint64(r.NumSpans()))
	s.requestsTotal.Add(uint64(r.NumRequests()))
	for p, vs := range r.Usage {
		series, ok := s.metrics[p]
		if !ok {
			series = make([]float64, base)
		}
		for len(series) < base {
			series = append(series, 0)
		}
		s.metrics[p] = append(series, vs...)
	}
	s.padMetricsLocked(base + len(r.Windows))
	s.evictLocked()
}

// padMetricsLocked zero-fills every metric series to n values so pairs
// absent from newly recorded windows stay aligned with the trace ring: a
// pair missing from a window means zero observed usage, and both the range
// reads and eviction re-slice all series by trace-ring offsets, so a short
// series would panic them. Callers must hold s.mu.
func (s *Server) padMetricsLocked(n int) {
	for p, series := range s.metrics {
		for len(series) < n {
			series = append(series, 0)
		}
		s.metrics[p] = series
	}
}

// evictLocked drops the oldest windows beyond the retention horizon —
// traces, cached features, and every metric series in lockstep. The slices
// are re-sliced forward (evicted trace payloads are nil'ed so they can be
// collected immediately); appends reallocate the backing arrays once their
// capacity is consumed, so resident memory stays O(retention) without a
// compaction pass. Callers must hold s.mu.
func (s *Server) evictLocked() {
	if s.retention <= 0 {
		return
	}
	excess := len(s.traces) - s.retention
	if excess <= 0 {
		if s.residentGauge != nil {
			s.residentGauge.Set(float64(len(s.traces)))
		}
		return
	}
	s.base += excess
	for i := 0; i < excess; i++ {
		s.traces[i] = nil
		s.feats[i] = featEntry{}
	}
	s.traces = s.traces[excess:]
	s.feats = s.feats[excess:]
	for p, series := range s.metrics {
		s.metrics[p] = series[excess:]
	}
	s.evictedTotal.Add(uint64(excess))
	if s.residentGauge != nil {
		s.residentGauge.Set(float64(len(s.traces)))
	}
}

// NumWindows returns the absolute number of windows ever recorded; window
// indices are absolute, so valid read ranges are [OldestWindow, NumWindows).
func (s *Server) NumWindows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base + len(s.traces)
}

// OldestWindow returns the absolute index of the oldest resident window
// (0 until retention evicts anything).
func (s *Server) OldestWindow() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// ResidentWindows returns the number of windows currently held in memory.
func (s *Server) ResidentWindows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.traces)
}

// Pairs returns every (component, resource) pair with recorded metrics, in
// unspecified order.
func (s *Server) Pairs() []app.Pair {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]app.Pair, 0, len(s.metrics))
	for p := range s.metrics {
		out = append(out, p)
	}
	return out
}

// Traces returns the trace batches of windows [from, to).
func (s *Server) Traces(from, to int) ([][]trace.Batch, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	out := make([][]trace.Batch, to-from)
	copy(out, s.traces[from-s.base:to-s.base])
	return out, nil
}

// Metric returns the utilization series of pair p over windows [from, to).
func (s *Server) Metric(p app.Pair, from, to int) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	series, ok := s.metrics[p]
	if !ok {
		return nil, fmt.Errorf("telemetry: no metric recorded for %s", p)
	}
	out := make([]float64, to-from)
	copy(out, series[from-s.base:to-s.base])
	return out, nil
}

// Metrics returns all series over windows [from, to), keyed by pair.
func (s *Server) Metrics(from, to int) (map[app.Pair][]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	out := make(map[app.Pair][]float64, len(s.metrics))
	for p, series := range s.metrics {
		cp := make([]float64, to-from)
		copy(cp, series[from-s.base:to-s.base])
		out[p] = cp
	}
	return out, nil
}

// Features returns the feature vectors of windows [from, to) for the given
// generation, serving cached vectors where possible. Windows whose cached
// vector belongs to a different generation (or was never extracted) are
// re-extracted with fn — outside the store lock — and the results are
// written back to the cache, so a generation swap costs one extraction pass
// over the resident range instead of one per query forever after.
//
// The returned vectors are shared with the cache: callers must treat
// Counts as read-only.
func (s *Server) Features(gen int, fn Extractor, from, to int) ([]features.Vector, error) {
	if fn == nil {
		return nil, fmt.Errorf("telemetry: nil feature extractor")
	}
	s.mu.RLock()
	if err := s.checkRange(from, to); err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	out := make([]features.Vector, to-from)
	var missing []int // absolute window indices needing extraction
	var raw [][]trace.Batch
	for i := from; i < to; i++ {
		e := s.feats[i-s.base]
		if e.ok && e.gen == gen {
			out[i-from] = e.vec
		} else {
			missing = append(missing, i)
			raw = append(raw, s.traces[i-s.base])
		}
	}
	s.mu.RUnlock()
	if len(missing) == 0 {
		return out, nil
	}

	for k, idx := range missing {
		out[idx-from] = fn(raw[k])
	}
	s.extractsTotal.Add(uint64(len(missing)))

	// Write back; windows evicted while extracting are simply skipped.
	s.mu.Lock()
	for _, idx := range missing {
		if idx >= s.base && idx-s.base < len(s.feats) {
			s.feats[idx-s.base] = featEntry{gen: gen, vec: out[idx-from], ok: true}
		}
	}
	s.mu.Unlock()
	return out, nil
}

func (s *Server) checkRange(from, to int) error {
	if from < s.base {
		return fmt.Errorf("telemetry: window range [%d, %d) reaches below the retention horizon (oldest resident window is %d)", from, to, s.base)
	}
	if to > s.base+len(s.traces) || from > to {
		return fmt.Errorf("telemetry: window range [%d, %d) out of bounds (windows [%d, %d) resident)", from, to, s.base, s.base+len(s.traces))
	}
	return nil
}
