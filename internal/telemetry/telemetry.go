// Package telemetry is the in-cluster observability stand-in for the
// paper's Jaeger + Prometheus deployment: a windowed store of distributed
// traces and resource metrics that DeepRest queries during the application
// learning phase and at sanity-check time.
//
// The store is safe for concurrent use: a scraper goroutine can Record
// windows while DeepRest reads ranges.
package telemetry

import (
	"fmt"
	"sync"

	"repro/internal/app"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Server stores aligned windows of trace batches and resource metrics.
type Server struct {
	mu            sync.RWMutex
	windowSeconds float64
	traces        [][]trace.Batch
	metrics       map[app.Pair][]float64

	// Ingestion volume counters; nil (no-op) until Instrument is called.
	windowsTotal  *obs.Counter
	spansTotal    *obs.Counter
	requestsTotal *obs.Counter
}

// Instrument registers ingestion-volume counters on reg and counts every
// window already in the store, so attaching after an import loses nothing.
// A nil registry leaves the server uninstrumented (the counters stay no-op).
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windowsTotal = reg.Counter("deeprest_telemetry_windows_total",
		"Telemetry windows ingested into the store.")
	s.spansTotal = reg.Counter("deeprest_telemetry_spans_total",
		"Trace spans ingested (batches expanded by request count).")
	s.requestsTotal = reg.Counter("deeprest_telemetry_requests_total",
		"Traced requests ingested.")
	s.windowsTotal.Add(uint64(len(s.traces)))
	for _, batches := range s.traces {
		wr := sim.WindowResult{Batches: batches}
		s.spansTotal.Add(uint64(wr.NumSpans()))
		s.requestsTotal.Add(uint64(wr.NumRequests()))
	}
}

// NewServer returns an empty telemetry server with the given scrape window
// duration in seconds.
func NewServer(windowSeconds float64) *Server {
	return &Server{
		windowSeconds: windowSeconds,
		metrics:       make(map[app.Pair][]float64),
	}
}

// WindowSeconds returns the scrape window duration.
func (s *Server) WindowSeconds() float64 {
	return s.windowSeconds
}

// Record appends one window of telemetry.
func (s *Server) Record(wr sim.WindowResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := len(s.traces)
	s.traces = append(s.traces, wr.Batches)
	s.windowsTotal.Inc()
	s.spansTotal.Add(uint64(wr.NumSpans()))
	s.requestsTotal.Add(uint64(wr.NumRequests()))
	for p, v := range wr.Usage {
		series, ok := s.metrics[p]
		if !ok {
			series = make([]float64, idx)
		}
		for len(series) < idx {
			series = append(series, 0)
		}
		s.metrics[p] = append(series, v)
	}
}

// RecordRun appends every window of a simulation run.
func (s *Server) RecordRun(r *sim.Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := len(s.traces)
	s.traces = append(s.traces, r.Windows...)
	s.windowsTotal.Add(uint64(len(r.Windows)))
	s.spansTotal.Add(uint64(r.NumSpans()))
	s.requestsTotal.Add(uint64(r.NumRequests()))
	for p, vs := range r.Usage {
		series, ok := s.metrics[p]
		if !ok {
			series = make([]float64, base)
		}
		for len(series) < base {
			series = append(series, 0)
		}
		s.metrics[p] = append(series, vs...)
	}
}

// NumWindows returns the number of recorded windows.
func (s *Server) NumWindows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.traces)
}

// Pairs returns every (component, resource) pair with recorded metrics, in
// unspecified order.
func (s *Server) Pairs() []app.Pair {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]app.Pair, 0, len(s.metrics))
	for p := range s.metrics {
		out = append(out, p)
	}
	return out
}

// Traces returns the trace batches of windows [from, to).
func (s *Server) Traces(from, to int) ([][]trace.Batch, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	out := make([][]trace.Batch, to-from)
	copy(out, s.traces[from:to])
	return out, nil
}

// Metric returns the utilization series of pair p over windows [from, to).
func (s *Server) Metric(p app.Pair, from, to int) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	series, ok := s.metrics[p]
	if !ok {
		return nil, fmt.Errorf("telemetry: no metric recorded for %s", p)
	}
	out := make([]float64, to-from)
	copy(out, series[from:to])
	return out, nil
}

// Metrics returns all series over windows [from, to), keyed by pair.
func (s *Server) Metrics(from, to int) (map[app.Pair][]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	out := make(map[app.Pair][]float64, len(s.metrics))
	for p, series := range s.metrics {
		cp := make([]float64, to-from)
		copy(cp, series[from:to])
		out[p] = cp
	}
	return out, nil
}

func (s *Server) checkRange(from, to int) error {
	if from < 0 || to > len(s.traces) || from > to {
		return fmt.Errorf("telemetry: window range [%d, %d) out of bounds (have %d windows)", from, to, len(s.traces))
	}
	return nil
}
