package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The JSON interchange format lets real telemetry (exported from a Jaeger +
// Prometheus deployment by a thin adapter) feed DeepRest, and simulated
// telemetry feed external analysis tools. The format is line-oriented for
// streamability: a header object followed by one JSON object per window.
//
//	{"format":"deeprest-telemetry","version":1,"window_seconds":300}
//	{"traces":[{"api":"/x","count":12,"root":{...}}],"usage":{"C/cpu":1.5}}
//	...

// codecHeader is the first JSON line of a telemetry stream.
type codecHeader struct {
	Format        string  `json:"format"`
	Version       int     `json:"version"`
	WindowSeconds float64 `json:"window_seconds"`
}

const (
	codecFormat  = "deeprest-telemetry"
	codecVersion = 1
)

// jsonSpan mirrors trace.Span for interchange.
type jsonSpan struct {
	Component string     `json:"component"`
	Operation string     `json:"operation"`
	Children  []jsonSpan `json:"children,omitempty"`
}

func toJSONSpan(s *trace.Span) jsonSpan {
	out := jsonSpan{Component: s.Component, Operation: s.Operation}
	for _, c := range s.Children {
		out.Children = append(out.Children, toJSONSpan(c))
	}
	return out
}

func (j jsonSpan) span() *trace.Span {
	s := trace.NewSpan(j.Component, j.Operation)
	for _, c := range j.Children {
		s.Children = append(s.Children, c.span())
	}
	return s
}

// jsonBatch mirrors trace.Batch.
type jsonBatch struct {
	API   string   `json:"api"`
	Count int      `json:"count"`
	Root  jsonSpan `json:"root"`
}

// jsonWindow is one scrape window.
type jsonWindow struct {
	Traces []jsonBatch        `json:"traces"`
	Usage  map[string]float64 `json:"usage"`
}

// ExportJSON writes the server's resident contents as a telemetry stream.
// On a retention-bounded store only the windows inside the horizon are
// exported; the importer re-bases them at window 0.
func (s *Server) ExportJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(codecHeader{Format: codecFormat, Version: codecVersion, WindowSeconds: s.WindowSeconds()}); err != nil {
		return fmt.Errorf("telemetry: encode header: %w", err)
	}
	oldest, n := s.OldestWindow(), s.NumWindows()
	traces, err := s.Traces(oldest, n)
	if err != nil {
		return err
	}
	metrics, err := s.Metrics(oldest, n)
	if err != nil {
		return err
	}
	for i := 0; i < n-oldest; i++ {
		jw := jsonWindow{Usage: make(map[string]float64, len(metrics))}
		for _, b := range traces[i] {
			if b.Trace.Root == nil {
				continue
			}
			jw.Traces = append(jw.Traces, jsonBatch{
				API:   b.Trace.API,
				Count: b.Count,
				Root:  toJSONSpan(b.Trace.Root),
			})
		}
		for p, series := range metrics {
			jw.Usage[p.String()] = series[i]
		}
		if err := enc.Encode(jw); err != nil {
			return fmt.Errorf("telemetry: encode window %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ImportJSON reads a telemetry stream into a fresh server.
func ImportJSON(r io.Reader) (*Server, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr codecHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("telemetry: decode header: %w", err)
	}
	if hdr.Format != codecFormat {
		return nil, fmt.Errorf("telemetry: unexpected format %q", hdr.Format)
	}
	if hdr.Version != codecVersion {
		return nil, fmt.Errorf("telemetry: unsupported version %d", hdr.Version)
	}
	if hdr.WindowSeconds <= 0 {
		return nil, fmt.Errorf("telemetry: invalid window duration %v", hdr.WindowSeconds)
	}
	s := NewServer(hdr.WindowSeconds)
	for i := 0; ; i++ {
		var jw jsonWindow
		if err := dec.Decode(&jw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: decode window %d: %w", i, err)
		}
		wr := sim.WindowResult{Usage: make(sim.Usage, len(jw.Usage))}
		for _, jb := range jw.Traces {
			if jb.Count <= 0 {
				return nil, fmt.Errorf("telemetry: window %d has non-positive batch count %d", i, jb.Count)
			}
			wr.Batches = append(wr.Batches, trace.Batch{
				Trace: trace.Trace{API: jb.API, Root: jb.Root.span()},
				Count: jb.Count,
			})
		}
		for key, v := range jw.Usage {
			p, err := app.ParsePair(key)
			if err != nil {
				return nil, fmt.Errorf("telemetry: window %d: %w", i, err)
			}
			wr.Usage[p] = v
		}
		s.Record(wr)
	}
	return s, nil
}
