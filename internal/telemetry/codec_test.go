package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/testutil"
)

func TestJSONRoundTrip(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 25, 11)
	src := NewServer(run.WindowSeconds)
	src.RecordRun(run)

	var buf bytes.Buffer
	if err := src.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	dst, err := ImportJSON(&buf)
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if dst.NumWindows() != src.NumWindows() {
		t.Fatalf("windows %d vs %d", dst.NumWindows(), src.NumWindows())
	}
	if dst.WindowSeconds() != src.WindowSeconds() {
		t.Fatal("window duration lost")
	}
	for _, p := range app.Toy().ResourcePairs() {
		a, err := src.Metric(p, 0, src.NumWindows())
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Metric(p, 0, dst.NumWindows())
		if err != nil {
			t.Fatalf("%s lost: %v", p, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s window %d: %v vs %v", p, i, a[i], b[i])
			}
		}
	}
	at, _ := src.Traces(0, src.NumWindows())
	bt, _ := dst.Traces(0, dst.NumWindows())
	for w := range at {
		if len(at[w]) != len(bt[w]) {
			t.Fatalf("window %d: %d vs %d batches", w, len(at[w]), len(bt[w]))
		}
		for i := range at[w] {
			if at[w][i].Count != bt[w][i].Count ||
				at[w][i].Trace.API != bt[w][i].Trace.API ||
				at[w][i].Trace.Root.String() != bt[w][i].Trace.Root.String() {
				t.Fatalf("window %d batch %d differs", w, i)
			}
		}
	}
}

func TestImportJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad format":  `{"format":"something-else","version":1,"window_seconds":60}`,
		"bad version": `{"format":"deeprest-telemetry","version":99,"window_seconds":60}`,
		"bad window":  `{"format":"deeprest-telemetry","version":1,"window_seconds":0}`,
		"bad count": `{"format":"deeprest-telemetry","version":1,"window_seconds":60}
{"traces":[{"api":"/x","count":0,"root":{"component":"A","operation":"op"}}],"usage":{}}`,
		"bad pair": `{"format":"deeprest-telemetry","version":1,"window_seconds":60}
{"traces":[],"usage":{"nonsense":1}}`,
		"bad json": `{"format":"deeprest-telemetry","version":1,"window_seconds":60}
{{{`,
	}
	for name, input := range cases {
		if _, err := ImportJSON(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestImportJSONMinimal(t *testing.T) {
	input := `{"format":"deeprest-telemetry","version":1,"window_seconds":30}
{"traces":[{"api":"/x","count":2,"root":{"component":"A","operation":"op","children":[{"component":"B","operation":"op2"}]}}],"usage":{"A/cpu":1.5,"B/memory":64}}
`
	s, err := ImportJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 1 {
		t.Fatalf("windows = %d", s.NumWindows())
	}
	m, err := s.Metric(app.Pair{Component: "B", Resource: app.Memory}, 0, 1)
	if err != nil || m[0] != 64 {
		t.Fatalf("metric = %v, %v", m, err)
	}
	traces, _ := s.Traces(0, 1)
	if traces[0][0].Trace.Root.NumSpans() != 2 {
		t.Fatal("span tree lost")
	}
}

func TestParsePair(t *testing.T) {
	p, err := app.ParsePair("PostStorageMongoDB/write_iops")
	if err != nil || p.Component != "PostStorageMongoDB" || p.Resource != app.WriteIOps {
		t.Fatalf("ParsePair = %v, %v", p, err)
	}
	// Components may contain slashes; the resource is after the last one.
	p, err = app.ParsePair("ns/pod-1/cpu")
	if err != nil || p.Component != "ns/pod-1" || p.Resource != app.CPU {
		t.Fatalf("ParsePair nested = %v, %v", p, err)
	}
	for _, bad := range []string{"", "noresource", "/cpu", "X/", "X/unknown"} {
		if _, err := app.ParsePair(bad); err == nil {
			t.Errorf("ParsePair(%q) should fail", bad)
		}
	}
}
