package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// Fuzz targets for every decoder that accepts external bytes: importers
// must reject malformed input with an error — never panic — and anything
// they accept must re-export losslessly where applicable.

func FuzzImportJSON(f *testing.F) {
	f.Add(`{"format":"deeprest-telemetry","version":1,"window_seconds":60}
{"traces":[{"api":"/x","count":2,"root":{"component":"A","operation":"op"}}],"usage":{"A/cpu":1.5}}`)
	f.Add(`{"format":"deeprest-telemetry","version":1,"window_seconds":60}`)
	f.Add(`{"format":"nope"}`)
	f.Add(`{{{`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ImportJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must survive a re-export → re-import cycle.
		var buf bytes.Buffer
		if err := s.ExportJSON(&buf); err != nil {
			t.Fatalf("accepted stream failed to export: %v", err)
		}
		s2, err := ImportJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.NumWindows() != s.NumWindows() {
			t.Fatalf("round trip lost windows: %d vs %d", s2.NumWindows(), s.NumWindows())
		}
	})
}

func FuzzImportJaegerTraces(f *testing.F) {
	f.Add(`{"data":[{"traceID":"t","spans":[{"spanID":"a","operationName":"x","startTime":1,"processID":"p","references":[]}],"processes":{"p":{"serviceName":"S"}}}]}`, int64(0))
	f.Add(`{"data":[]}`, int64(5))
	f.Add(`{`, int64(0))
	f.Fuzz(func(t *testing.T, input string, startMicros int64) {
		windows, err := ImportJaegerTraces(strings.NewReader(input), time.UnixMicro(startMicros), 60, 4)
		if err != nil {
			return
		}
		if len(windows) != 4 {
			t.Fatalf("accepted dump produced %d windows, want 4", len(windows))
		}
		for _, batches := range windows {
			for _, b := range batches {
				if b.Count <= 0 || b.Trace.Root == nil {
					t.Fatal("accepted dump produced an invalid batch")
				}
			}
		}
	})
}

// FuzzIngestSpans is the adversarial companion to FuzzImportJaegerTraces:
// its seed corpus concentrates on the pathological span graphs a real
// collector can emit — malformed parent references, duplicate span ids,
// self-references and reference cycles, out-of-order and extreme
// timestamps, unknown processes. None of it may panic or hang, and any
// accepted dump must import deterministically (same batches, same order,
// both times).
func FuzzIngestSpans(f *testing.F) {
	// Malformed parent reference: the only span points at an id that does
	// not exist, which makes it the root by fallback.
	f.Add(`{"data":[{"traceID":"t","spans":[
		{"spanID":"a","operationName":"op","startTime":0,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"ghost"}]}
	],"processes":{"p":{"serviceName":"S"}}}]}`)
	// Duplicate span ids: the second definition silently wins the node slot.
	f.Add(`{"data":[{"traceID":"t","spans":[
		{"spanID":"a","operationName":"x","startTime":0,"processID":"p"},
		{"spanID":"a","operationName":"y","startTime":1,"processID":"p"}
	],"processes":{"p":{"serviceName":"S"}}}]}`)
	// Self-referencing span next to a legitimate root.
	f.Add(`{"data":[{"traceID":"t","spans":[
		{"spanID":"r","operationName":"root","startTime":0,"processID":"p"},
		{"spanID":"a","operationName":"x","startTime":1,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"a"}]}
	],"processes":{"p":{"serviceName":"S"}}}]}`)
	// Two-span reference cycle unreachable from the root.
	f.Add(`{"data":[{"traceID":"t","spans":[
		{"spanID":"r","operationName":"root","startTime":0,"processID":"p"},
		{"spanID":"a","operationName":"x","startTime":1,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"b"}]},
		{"spanID":"b","operationName":"y","startTime":2,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"a"}]}
	],"processes":{"p":{"serviceName":"S"}}}]}`)
	// Out-of-order and extreme timestamps (child starts before its parent).
	f.Add(`{"data":[{"traceID":"t","spans":[
		{"spanID":"a","operationName":"op","startTime":9999999999999999,"processID":"p"},
		{"spanID":"b","operationName":"op2","startTime":-5,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"a"}]}
	],"processes":{"p":{"serviceName":"S"}}}]}`)
	// Unknown process, empty span list, truncated JSON, empty input.
	f.Add(`{"data":[{"traceID":"t","spans":[{"spanID":"a","operationName":"op","startTime":0,"processID":"nope"}],"processes":{}}]}`)
	f.Add(`{"data":[{"traceID":"t","spans":[],"processes":{}}]}`)
	f.Add(`{"data":[{"traceID":`)
	f.Add(``)

	start := time.UnixMicro(0)
	f.Fuzz(func(t *testing.T, input string) {
		const numWindows = 4
		windows, err := ImportJaegerTraces(strings.NewReader(input), start, 1, numWindows)
		if err != nil {
			return // rejected loudly, which is fine
		}
		if len(windows) != numWindows {
			t.Fatalf("accepted dump produced %d windows, want %d", len(windows), numWindows)
		}
		for w, batches := range windows {
			for _, b := range batches {
				if b.Count <= 0 {
					t.Fatalf("window %d: batch with non-positive count %d", w, b.Count)
				}
				if b.Trace.Root == nil || b.Trace.Root.NumSpans() <= 0 {
					t.Fatalf("window %d: batch with empty span tree", w)
				}
			}
		}
		// Determinism: re-importing the same dump yields the same batches
		// in the same order (the importer sorts by window and signature).
		again, err := ImportJaegerTraces(strings.NewReader(input), start, 1, numWindows)
		if err != nil {
			t.Fatalf("second import of accepted input failed: %v", err)
		}
		for w := range windows {
			if len(again[w]) != len(windows[w]) {
				t.Fatalf("window %d: %d batches vs %d on re-import", w, len(windows[w]), len(again[w]))
			}
			for i := range windows[w] {
				if again[w][i].Count != windows[w][i].Count ||
					again[w][i].Trace.API != windows[w][i].Trace.API {
					t.Fatalf("window %d batch %d differs on re-import", w, i)
				}
			}
		}
	})
}

func FuzzImportPrometheusMatrix(f *testing.F) {
	f.Add(`{"status":"success","data":{"resultType":"matrix","result":[{"metric":{"component":"A","resource":"cpu"},"values":[[5,"10"]]}]}}`)
	f.Add(`{"status":"error"}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		usage, err := ImportPrometheusMatrix(strings.NewReader(input), time.Unix(0, 0), 60, 3, nil)
		if err != nil {
			return
		}
		for p, series := range usage {
			if len(series) != 3 {
				t.Fatalf("%s: series length %d, want 3", p, len(series))
			}
		}
	})
}

// FuzzExportedStreamsAlwaysImport checks the invariant from the generator
// side: any telemetry the simulator can produce exports to a stream the
// importer accepts.
func FuzzExportedStreamsAlwaysImport(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, days uint8) {
		d := int(days%2) + 1
		_, _, run := testutil.ToyTelemetry(t, d, 20, seed)
		s := NewServer(run.WindowSeconds)
		s.RecordRun(run)
		var buf bytes.Buffer
		if err := s.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ImportJSON(&buf); err != nil {
			t.Fatalf("generated stream rejected: %v", err)
		}
	})
}
