package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// Fuzz targets for every decoder that accepts external bytes: importers
// must reject malformed input with an error — never panic — and anything
// they accept must re-export losslessly where applicable.

func FuzzImportJSON(f *testing.F) {
	f.Add(`{"format":"deeprest-telemetry","version":1,"window_seconds":60}
{"traces":[{"api":"/x","count":2,"root":{"component":"A","operation":"op"}}],"usage":{"A/cpu":1.5}}`)
	f.Add(`{"format":"deeprest-telemetry","version":1,"window_seconds":60}`)
	f.Add(`{"format":"nope"}`)
	f.Add(`{{{`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ImportJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must survive a re-export → re-import cycle.
		var buf bytes.Buffer
		if err := s.ExportJSON(&buf); err != nil {
			t.Fatalf("accepted stream failed to export: %v", err)
		}
		s2, err := ImportJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.NumWindows() != s.NumWindows() {
			t.Fatalf("round trip lost windows: %d vs %d", s2.NumWindows(), s.NumWindows())
		}
	})
}

func FuzzImportJaegerTraces(f *testing.F) {
	f.Add(`{"data":[{"traceID":"t","spans":[{"spanID":"a","operationName":"x","startTime":1,"processID":"p","references":[]}],"processes":{"p":{"serviceName":"S"}}}]}`, int64(0))
	f.Add(`{"data":[]}`, int64(5))
	f.Add(`{`, int64(0))
	f.Fuzz(func(t *testing.T, input string, startMicros int64) {
		windows, err := ImportJaegerTraces(strings.NewReader(input), time.UnixMicro(startMicros), 60, 4)
		if err != nil {
			return
		}
		if len(windows) != 4 {
			t.Fatalf("accepted dump produced %d windows, want 4", len(windows))
		}
		for _, batches := range windows {
			for _, b := range batches {
				if b.Count <= 0 || b.Trace.Root == nil {
					t.Fatal("accepted dump produced an invalid batch")
				}
			}
		}
	})
}

func FuzzImportPrometheusMatrix(f *testing.F) {
	f.Add(`{"status":"success","data":{"resultType":"matrix","result":[{"metric":{"component":"A","resource":"cpu"},"values":[[5,"10"]]}]}}`)
	f.Add(`{"status":"error"}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		usage, err := ImportPrometheusMatrix(strings.NewReader(input), time.Unix(0, 0), 60, 3, nil)
		if err != nil {
			return
		}
		for p, series := range usage {
			if len(series) != 3 {
				t.Fatalf("%s: series length %d, want 3", p, len(series))
			}
		}
	})
}

// FuzzExportedStreamsAlwaysImport checks the invariant from the generator
// side: any telemetry the simulator can produce exports to a stream the
// importer accepts.
func FuzzExportedStreamsAlwaysImport(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, days uint8) {
		d := int(days%2) + 1
		_, _, run := testutil.ToyTelemetry(t, d, 20, seed)
		s := NewServer(run.WindowSeconds)
		s.RecordRun(run)
		var buf bytes.Buffer
		if err := s.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ImportJSON(&buf); err != nil {
			t.Fatalf("generated stream rejected: %v", err)
		}
	})
}
