package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/app"
)

// jaegerFixture: two traces of the same shape in window 0, one different
// trace in window 1, one out-of-range trace.
const jaegerFixture = `{
  "data": [
    {
      "traceID": "t1",
      "spans": [
        {"spanID": "a", "operationName": "readTimeline", "startTime": 1000000, "processID": "p1", "references": []},
        {"spanID": "b", "operationName": "find", "startTime": 1200000, "processID": "p2",
         "references": [{"refType": "CHILD_OF", "spanID": "a"}]}
      ],
      "processes": {"p1": {"serviceName": "FrontendNGINX"}, "p2": {"serviceName": "MongoDB"}}
    },
    {
      "traceID": "t2",
      "spans": [
        {"spanID": "c", "operationName": "readTimeline", "startTime": 2000000, "processID": "p1", "references": []},
        {"spanID": "d", "operationName": "find", "startTime": 2100000, "processID": "p2",
         "references": [{"refType": "CHILD_OF", "spanID": "c"}]}
      ],
      "processes": {"p1": {"serviceName": "FrontendNGINX"}, "p2": {"serviceName": "MongoDB"}}
    },
    {
      "traceID": "t3",
      "spans": [
        {"spanID": "e", "operationName": "composePost", "startTime": 61000000, "processID": "p1", "references": []}
      ],
      "processes": {"p1": {"serviceName": "FrontendNGINX"}}
    },
    {
      "traceID": "t4",
      "spans": [
        {"spanID": "f", "operationName": "late", "startTime": 999000000, "processID": "p1", "references": []}
      ],
      "processes": {"p1": {"serviceName": "FrontendNGINX"}}
    }
  ]
}`

func TestImportJaegerTraces(t *testing.T) {
	start := time.UnixMicro(0)
	windows, err := ImportJaegerTraces(strings.NewReader(jaegerFixture), start, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("windows = %d", len(windows))
	}
	// Window 0: the two identical /readTimeline traces batch together.
	if len(windows[0]) != 1 {
		t.Fatalf("window 0 batches = %v", windows[0])
	}
	b := windows[0][0]
	if b.Count != 2 || b.Trace.API != "/readTimeline" {
		t.Errorf("batch = %+v", b)
	}
	if b.Trace.Root.ID() != "FrontendNGINX:readTimeline" || b.Trace.Root.Children[0].ID() != "MongoDB:find" {
		t.Errorf("tree = %s", b.Trace.Root)
	}
	// Window 1: the compose trace; the "late" trace is dropped.
	if len(windows[1]) != 1 || windows[1][0].Trace.API != "/composePost" {
		t.Errorf("window 1 = %+v", windows[1])
	}
}

func TestImportJaegerChildOrder(t *testing.T) {
	// Children attach in start-time order regardless of input order.
	fixture := `{"data":[{"traceID":"t","spans":[
	  {"spanID":"r","operationName":"root","startTime":100,"processID":"p","references":[]},
	  {"spanID":"second","operationName":"b","startTime":300,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"r"}]},
	  {"spanID":"first","operationName":"a","startTime":200,"processID":"p","references":[{"refType":"CHILD_OF","spanID":"r"}]}
	],"processes":{"p":{"serviceName":"S"}}}]}`
	windows, err := ImportJaegerTraces(strings.NewReader(fixture), time.UnixMicro(0), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := windows[0][0].Trace.Root
	if root.Children[0].Operation != "a" || root.Children[1].Operation != "b" {
		t.Errorf("child order = %v, %v", root.Children[0].Operation, root.Children[1].Operation)
	}
}

func TestImportJaegerErrors(t *testing.T) {
	if _, err := ImportJaegerTraces(strings.NewReader("{"), time.Unix(0, 0), 60, 1); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := ImportJaegerTraces(strings.NewReader("{}"), time.Unix(0, 0), 0, 1); err == nil {
		t.Error("bad geometry must fail")
	}
	twoRoots := `{"data":[{"traceID":"t","spans":[
	  {"spanID":"a","operationName":"x","startTime":1,"processID":"p","references":[]},
	  {"spanID":"b","operationName":"y","startTime":2,"processID":"p","references":[]}
	],"processes":{"p":{"serviceName":"S"}}}]}`
	if _, err := ImportJaegerTraces(strings.NewReader(twoRoots), time.Unix(0, 0), 60, 1); err == nil {
		t.Error("multi-root trace must fail")
	}
	badProc := `{"data":[{"traceID":"t","spans":[
	  {"spanID":"a","operationName":"x","startTime":1,"processID":"ghost","references":[]}
	],"processes":{}}]}`
	if _, err := ImportJaegerTraces(strings.NewReader(badProc), time.Unix(0, 0), 60, 1); err == nil {
		t.Error("unknown process must fail")
	}
}

const promFixture = `{
  "status": "success",
  "data": {
    "resultType": "matrix",
    "result": [
      {
        "metric": {"component": "FrontendNGINX", "resource": "cpu"},
        "values": [[5, "10"], [30, "20"], [65, "40"], [999, "1"]]
      },
      {
        "metric": {"component": "MongoDB", "resource": "write_iops"},
        "values": [[10, "3"]]
      },
      {
        "metric": {"__name__": "unrelated"},
        "values": [[10, "99"]]
      }
    ]
  }
}`

func TestImportPrometheusMatrix(t *testing.T) {
	usage, err := ImportPrometheusMatrix(strings.NewReader(promFixture), time.Unix(0, 0), 60, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu := usage[app.Pair{Component: "FrontendNGINX", Resource: app.CPU}]
	if cpu == nil {
		t.Fatal("cpu series missing")
	}
	// Window 0 averages samples at t=5 and t=30; window 1 has t=65; the
	// t=999 sample is out of range.
	if cpu[0] != 15 || cpu[1] != 40 {
		t.Errorf("cpu = %v", cpu)
	}
	iops := usage[app.Pair{Component: "MongoDB", Resource: app.WriteIOps}]
	if iops[0] != 3 || iops[1] != 0 {
		t.Errorf("iops = %v", iops)
	}
	if len(usage) != 2 {
		t.Errorf("unmapped series leaked: %v", usage)
	}
}

func TestImportPrometheusErrors(t *testing.T) {
	bad := []string{
		`{"status":"error","data":{}}`,
		`{"status":"success","data":{"resultType":"vector","result":[]}}`,
		`{"status":"success","data":{"resultType":"matrix","result":[{"metric":{"component":"A","resource":"cpu"},"values":[[1,"notanumber"]]}]}}`,
		`{`,
	}
	for i, in := range bad {
		if _, err := ImportPrometheusMatrix(strings.NewReader(in), time.Unix(0, 0), 60, 1, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := ImportPrometheusMatrix(strings.NewReader(promFixture), time.Unix(0, 0), -1, 1, nil); err == nil {
		t.Error("bad geometry must fail")
	}
}

func TestBuildServerFromAdapters(t *testing.T) {
	start := time.Unix(0, 0)
	windows, err := ImportJaegerTraces(strings.NewReader(jaegerFixture), start, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	usage, err := ImportPrometheusMatrix(strings.NewReader(promFixture), start, 60, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildServer(60, windows, usage)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 2 {
		t.Fatalf("windows = %d", s.NumWindows())
	}
	m, err := s.Metric(app.Pair{Component: "FrontendNGINX", Resource: app.CPU}, 0, 2)
	if err != nil || m[0] != 15 {
		t.Fatalf("metric = %v, %v", m, err)
	}
	traces, _ := s.Traces(0, 1)
	if len(traces[0]) != 1 || traces[0][0].Count != 2 {
		t.Fatalf("traces = %+v", traces[0])
	}

	// Misaligned inputs are rejected.
	if _, err := BuildServer(60, windows[:1], usage); err == nil {
		t.Error("misaligned BuildServer must fail")
	}
}
