package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

var cpuA = app.Pair{Component: "A", Resource: app.CPU}

func evictedValue(reg *obs.Registry) uint64 {
	return reg.Counter("deeprest_telemetry_evicted_total",
		"Telemetry windows evicted past the retention horizon.").Value()
}

func residentValue(reg *obs.Registry) float64 {
	return reg.Gauge("deeprest_telemetry_resident_windows",
		"Telemetry windows currently resident in the store.").Value()
}

// seqWindow returns a window whose request count and metric encode the
// absolute window index i, so eviction alignment is checkable.
func seqWindow(i int) sim.WindowResult {
	root := trace.NewSpan("A", "op")
	root.Child("B", "sub")
	return sim.WindowResult{
		Batches: []trace.Batch{{Trace: trace.Trace{API: "/x", Root: root}, Count: i + 1}},
		Usage:   sim.Usage{cpuA: float64(i)},
	}
}

func TestRetentionBoundary(t *testing.T) {
	const horizon = 4
	reg := obs.NewRegistry()
	s := NewServer(60)
	s.SetRetention(horizon)
	s.Instrument(reg)

	// Fill up to the horizon: nothing evicts.
	for i := 0; i < horizon; i++ {
		s.Record(seqWindow(i))
	}
	if got := s.OldestWindow(); got != 0 {
		t.Fatalf("OldestWindow at capacity = %d, want 0", got)
	}
	if got := evictedValue(reg); got != 0 {
		t.Fatalf("evicted at capacity = %d, want 0", got)
	}

	// One more window evicts exactly the oldest.
	s.Record(seqWindow(horizon))
	if got := s.OldestWindow(); got != 1 {
		t.Fatalf("OldestWindow after first eviction = %d, want 1", got)
	}
	if got := s.NumWindows(); got != horizon+1 {
		t.Fatalf("NumWindows = %d, want %d (absolute indices keep counting)", got, horizon+1)
	}
	if got := s.ResidentWindows(); got != horizon {
		t.Fatalf("ResidentWindows = %d, want %d", got, horizon)
	}
	if got := evictedValue(reg); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if got := residentValue(reg); got != horizon {
		t.Fatalf("resident gauge = %v, want %d", got, horizon)
	}

	// Reads below the horizon fail loudly.
	if _, err := s.Traces(0, s.NumWindows()); err == nil || !strings.Contains(err.Error(), "retention") {
		t.Fatalf("Traces below horizon: err = %v, want retention error", err)
	}
	if _, err := s.Metric(cpuA, 0, 2); err == nil || !strings.Contains(err.Error(), "retention") {
		t.Fatalf("Metric below horizon: err = %v, want retention error", err)
	}

	// Retained windows keep their absolute alignment: metric value i at
	// absolute window i, trace batch count i+1.
	from, to := s.OldestWindow(), s.NumWindows()
	series, err := s.Metric(cpuA, from, to)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := s.Traces(from, to)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < to-from; k++ {
		abs := from + k
		if series[k] != float64(abs) {
			t.Fatalf("metric[%d] = %v, want %d (metrics misaligned with eviction)", abs, series[k], abs)
		}
		if got := traces[k][0].Count; got != abs+1 {
			t.Fatalf("trace count[%d] = %d, want %d (traces misaligned with eviction)", abs, got, abs+1)
		}
	}
}

// TestRetentionBoundsMemory is the memory-bound proof: ingesting many more
// windows than the horizon leaves resident window count, the trace slice,
// the feature cache, and every metric series at or below the horizon, while
// the retained range still reads back exactly what an unbounded store holds
// for the same absolute windows.
func TestRetentionBoundsMemory(t *testing.T) {
	const horizon = 16
	const total = 10 * horizon

	bounded := NewServer(60)
	bounded.SetRetention(horizon)
	unbounded := NewServer(60)
	for i := 0; i < total; i++ {
		bounded.Record(seqWindow(i))
		unbounded.Record(seqWindow(i))
	}

	// White-box bounds on the actual resident state.
	bounded.mu.RLock()
	if len(bounded.traces) > horizon {
		t.Errorf("len(traces) = %d, exceeds horizon %d", len(bounded.traces), horizon)
	}
	if len(bounded.feats) > horizon {
		t.Errorf("len(feats) = %d, exceeds horizon %d", len(bounded.feats), horizon)
	}
	for p, series := range bounded.metrics {
		if len(series) > horizon {
			t.Errorf("len(metrics[%s]) = %d, exceeds horizon %d", p, len(series), horizon)
		}
	}
	bounded.mu.RUnlock()
	if got := bounded.ResidentWindows(); got != horizon {
		t.Errorf("ResidentWindows = %d, want %d", got, horizon)
	}
	if got, want := bounded.NumWindows(), unbounded.NumWindows(); got != want {
		t.Errorf("NumWindows = %d, want %d", got, want)
	}

	// The retained range is bit-identical to the unbounded store's view of
	// the same absolute windows.
	from, to := bounded.OldestWindow(), bounded.NumWindows()
	bm, err := bounded.Metrics(from, to)
	if err != nil {
		t.Fatal(err)
	}
	um, err := unbounded.Metrics(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != len(um) {
		t.Fatalf("pair sets differ: %d vs %d", len(bm), len(um))
	}
	for p, bs := range bm {
		for i := range bs {
			if math.Float64bits(bs[i]) != math.Float64bits(um[p][i]) {
				t.Fatalf("metric %s window %d: %v != %v", p, from+i, bs[i], um[p][i])
			}
		}
	}
	bt, err := bounded.Traces(from, to)
	if err != nil {
		t.Fatal(err)
	}
	ut, err := unbounded.Traces(from, to)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bt {
		if len(bt[i]) != len(ut[i]) || bt[i][0].Count != ut[i][0].Count {
			t.Fatalf("trace window %d differs between bounded and unbounded store", from+i)
		}
	}
}

func TestFeatureCacheExtractsOncePerWindow(t *testing.T) {
	sp := features.NewSpaceFromTraces([]trace.Trace{seqWindow(0).Batches[0].Trace})
	var calls atomic.Int64
	counting := func(w []trace.Batch) features.Vector {
		calls.Add(1)
		return sp.Extract(w)
	}

	s := NewServer(60)
	s.SetExtractor(1, counting)
	const n = 8
	for i := 0; i < n; i++ {
		s.Record(seqWindow(i))
	}
	if got := calls.Load(); got != n {
		t.Fatalf("Record-time extractions = %d, want %d", got, n)
	}

	// Reads for the same generation are pure cache hits.
	series, err := s.Features(1, counting, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != n {
		t.Fatalf("extractions after cached read = %d, want %d (re-extracted on read)", got, n)
	}
	// Cached vectors match direct extraction bit for bit.
	traces, _ := s.Traces(0, n)
	for i, v := range series {
		direct := sp.Extract(traces[i])
		if len(v.Counts) != len(direct.Counts) || v.Unknown != direct.Unknown {
			t.Fatalf("window %d: cached vector shape differs from direct extraction", i)
		}
		for d := range v.Counts {
			if math.Float64bits(v.Counts[d]) != math.Float64bits(direct.Counts[d]) {
				t.Fatalf("window %d dim %d: cached %v != direct %v", i, d, v.Counts[d], direct.Counts[d])
			}
		}
	}

	// A generation swap invalidates: the first read re-extracts each
	// resident window once, after which reads are cached again.
	s.SetExtractor(2, counting)
	if _, err := s.Features(2, counting, 0, n); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2*n {
		t.Fatalf("extractions after generation swap = %d, want %d", got, 2*n)
	}
	if _, err := s.Features(2, counting, 0, n); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2*n {
		t.Fatalf("extractions after warm re-read = %d, want %d", got, 2*n)
	}
}

// TestConcurrentRecordReadEvict hammers Record, range reads, feature reads,
// and eviction concurrently; run under -race it is the store's memory-model
// proof. Readers tolerate retention-horizon errors (the range can be
// evicted between observing the bounds and reading), but never a torn or
// misaligned result.
func TestConcurrentRecordReadEvict(t *testing.T) {
	const horizon = 24
	sp := features.NewSpaceFromTraces([]trace.Trace{seqWindow(0).Batches[0].Trace})
	fn := func(w []trace.Batch) features.Vector { return sp.Extract(w) }

	s := NewServer(60)
	s.SetRetention(horizon)
	s.SetExtractor(1, fn)
	s.Instrument(obs.NewRegistry())

	const writers = 4
	const perWriter = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})

	var next atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Record(seqWindow(int(next.Add(1))))
			}
		}()
	}

	readErr := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := s.OldestWindow(), s.NumWindows()
				if to-from < 2 {
					continue
				}
				if _, err := s.Traces(from, to); err != nil && !strings.Contains(err.Error(), "retention") {
					readErr <- fmt.Errorf("Traces: %v", err)
					return
				}
				if _, err := s.Metric(cpuA, from, to); err != nil &&
					!strings.Contains(err.Error(), "retention") && !strings.Contains(err.Error(), "no metric") {
					readErr <- fmt.Errorf("Metric: %v", err)
					return
				}
				gen := 1 + r%2 // readers alternate generations to race cache fills
				if _, err := s.Features(gen, fn, from, to); err != nil && !strings.Contains(err.Error(), "retention") {
					readErr <- fmt.Errorf("Features: %v", err)
					return
				}
			}
		}(r)
	}

	// Wait for the writers, then stop the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		for s.NumWindows() < writers*perWriter {
			select {
			case <-done:
				return
			default:
			}
		}
		close(writersDone)
	}()
	select {
	case err := <-readErr:
		close(stop)
		t.Fatal(err)
	case <-writersDone:
	}
	close(stop)
	<-done

	if got := s.ResidentWindows(); got != horizon {
		t.Fatalf("ResidentWindows = %d, want %d", got, horizon)
	}
	if got := s.NumWindows(); got != writers*perWriter {
		t.Fatalf("NumWindows = %d, want %d", got, writers*perWriter)
	}
	from, to := s.OldestWindow(), s.NumWindows()
	if _, err := s.Traces(from, to); err != nil {
		t.Fatalf("final read: %v", err)
	}
}
