// Package eval provides the evaluation tooling behind the paper's figures:
// per-pair error tables, the estimation-quality heatmap of Figure 12, PCA
// projection of expert parameters for Figure 21, and small text renderers
// for time series so the experiment drivers can print the same artifacts
// the paper plots.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/nn/loss"
)

// MAPEFloor is the denominator floor used everywhere MAPE is computed, so
// near-idle windows do not dominate the metric.
const MAPEFloor = 1.0

// MAPE is the paper's headline metric, delegated to the loss package with
// the shared floor.
func MAPE(pred, actual []float64) float64 {
	return loss.MAPE(pred, actual, MAPEFloor)
}

// Cell is one heatmap cell: the error of one algorithm on one pair.
type Cell struct {
	// Pair is the estimation target.
	Pair app.Pair
	// MAPE is the error in percent; NaN marks inapplicable cells
	// (storage resources of stateless components, black in the paper).
	MAPE float64
}

// Heatmap is the estimation-quality matrix of Figure 12 for one algorithm:
// resources as rows, components as columns.
type Heatmap struct {
	// Algorithm names the technique.
	Algorithm string
	// Components are the column labels, Resources the row labels.
	Components []string
	// Resources are the row labels.
	Resources []app.Resource
	// Cells maps pair to error.
	Cells map[app.Pair]float64
}

// NewHeatmap builds a heatmap from per-pair errors for the given component
// columns. Rows cover all five resource kinds.
func NewHeatmap(algorithm string, components []string, errs map[app.Pair]float64) *Heatmap {
	return &Heatmap{
		Algorithm:  algorithm,
		Components: append([]string(nil), components...),
		Resources:  append([]app.Resource(nil), app.AllResources...),
		Cells:      errs,
	}
}

// grade buckets a MAPE value into the qualitative scale used to colour the
// paper's heatmap: green (accurate) through red (inaccurate).
func grade(mape float64) string {
	switch {
	case math.IsNaN(mape):
		return "  ----  "
	case mape < 10:
		return "++      " // strongly accurate
	case mape < 20:
		return "+       "
	case mape < 40:
		return "o       "
	case mape < 80:
		return "-       "
	default:
		return "--      "
	}
}

// Render prints the heatmap as a fixed-width table: each cell shows the
// MAPE and its qualitative grade (++ best … -- worst, ---- inapplicable).
func (h *Heatmap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Algorithm)
	fmt.Fprintf(&b, "%-12s", "")
	for _, c := range h.Components {
		fmt.Fprintf(&b, " %-22s", c)
	}
	b.WriteString("\n")
	for _, r := range h.Resources {
		fmt.Fprintf(&b, "%-12s", r)
		for _, c := range h.Components {
			v, ok := h.Cells[app.Pair{Component: c, Resource: r}]
			if !ok {
				v = math.NaN()
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %-22s", "       ----")
			} else {
				fmt.Fprintf(&b, " %6.1f%% %-14s", v, strings.TrimSpace(grade(v)))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MeanMAPE averages the applicable cells of the heatmap.
func (h *Heatmap) MeanMAPE() float64 {
	sum, n := 0.0, 0
	for _, v := range h.Cells {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// PCA projects row vectors onto their top-k principal components using
// power iteration with deflation. Rows may be high-dimensional (GRU
// parameter vectors); the covariance matrix is never materialised.
func PCA(rows [][]float64, k int, iters int) [][]float64 {
	n := len(rows)
	if n == 0 || k <= 0 {
		return nil
	}
	d := len(rows[0])
	// Center.
	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	x := make([][]float64, n)
	for i, r := range rows {
		x[i] = make([]float64, d)
		for j, v := range r {
			x[i][j] = v - mean[j]
		}
	}
	if iters <= 0 {
		iters = 50
	}
	comps := make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		v := make([]float64, d)
		// Deterministic pseudo-random start.
		for j := range v {
			v[j] = math.Sin(float64(j+1) * float64(c+1) * 0.7)
		}
		normalize(v)
		for it := 0; it < iters; it++ {
			// w = Xᵀ X v (implicitly), deflated against found comps.
			w := make([]float64, d)
			for i := range x {
				s := dot(x[i], v)
				axpy(s, x[i], w)
			}
			for _, pc := range comps {
				s := dot(w, pc)
				axpy(-s, pc, w)
			}
			if normalize(w) == 0 {
				break
			}
			v = w
		}
		comps = append(comps, v)
	}
	out := make([][]float64, n)
	for i := range x {
		out[i] = make([]float64, len(comps))
		for c, pc := range comps {
			out[i][c] = dot(x[i], pc)
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

func normalize(v []float64) float64 {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n
	}
	return n
}

// Sparkline renders a series as a unicode mini-chart, the text stand-in for
// the paper's time-series plots.
func Sparkline(series []float64, width int) string {
	if len(series) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if width <= 0 || width > len(series) {
		width = len(series)
	}
	// Downsample by averaging buckets.
	buckets := make([]float64, width)
	per := float64(len(series)) / float64(width)
	for i := 0; i < width; i++ {
		from := int(float64(i) * per)
		to := int(float64(i+1) * per)
		if to <= from {
			to = from + 1
		}
		if to > len(series) {
			to = len(series)
		}
		s := 0.0
		for _, v := range series[from:to] {
			s += v
		}
		buckets[i] = s / float64(to-from)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range buckets {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// SeriesSummary returns min/mean/max of a series formatted for experiment
// output.
func SeriesSummary(series []float64) string {
	if len(series) == 0 {
		return "(empty)"
	}
	lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range series {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		sum += v
	}
	return fmt.Sprintf("min=%.1f mean=%.1f max=%.1f", lo, sum/float64(len(series)), hi)
}

// RankAlgorithms orders algorithm names by ascending error.
func RankAlgorithms(errs map[string]float64) []string {
	names := make([]string, 0, len(errs))
	for n := range errs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if errs[names[i]] != errs[names[j]] {
			return errs[names[i]] < errs[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
