package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/app"
)

func TestHeatmapRenderAndMean(t *testing.T) {
	errs := map[app.Pair]float64{
		{Component: "A", Resource: app.CPU}:       5,
		{Component: "A", Resource: app.Memory}:    15,
		{Component: "B", Resource: app.CPU}:       50,
		{Component: "B", Resource: app.DiskUsage}: math.NaN(),
	}
	h := NewHeatmap("TestAlgo", []string{"A", "B"}, errs)
	out := h.Render()
	if !strings.Contains(out, "TestAlgo") || !strings.Contains(out, "cpu") {
		t.Errorf("Render = %q", out)
	}
	if !strings.Contains(out, "----") {
		t.Error("inapplicable cells must render as ----")
	}
	mean := h.MeanMAPE()
	want := (5.0 + 15 + 50) / 3
	if math.Abs(mean-want) > 1e-9 {
		t.Errorf("MeanMAPE = %v, want %v", mean, want)
	}
}

func TestHeatmapAllNaN(t *testing.T) {
	h := NewHeatmap("x", []string{"A"}, map[app.Pair]float64{
		{Component: "A", Resource: app.CPU}: math.NaN(),
	})
	if !math.IsNaN(h.MeanMAPE()) {
		t.Error("all-NaN heatmap mean must be NaN")
	}
}

func TestGradeBuckets(t *testing.T) {
	cases := []struct {
		mape float64
		want string
	}{
		{5, "++"}, {15, "+"}, {30, "o"}, {60, "-"}, {200, "--"},
	}
	for _, c := range cases {
		if got := strings.TrimSpace(grade(c.mape)); got != c.want {
			t.Errorf("grade(%v) = %q, want %q", c.mape, got, c.want)
		}
	}
	if got := strings.TrimSpace(grade(math.NaN())); got != "----" {
		t.Errorf("grade(NaN) = %q", got)
	}
}

// TestPCARecoversDominantDirection: points stretched along one axis must
// project their variance onto the first component.
func TestPCARecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 40, 6
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		long := rng.NormFloat64() * 10
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 0.1
		}
		rows[i][2] += long // dominant direction = axis 2
	}
	proj := PCA(rows, 2, 60)
	if len(proj) != n || len(proj[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
	var var1, var2 float64
	for _, p := range proj {
		var1 += p[0] * p[0]
		var2 += p[1] * p[1]
	}
	if var1 < 50*var2 {
		t.Errorf("first PC variance %v should dominate second %v", var1, var2)
	}
}

// TestPCASeparatesClusters: two well-separated clusters must stay separated
// in projection.
func TestPCASeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	labels := []int{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 10; i++ {
			row := make([]float64, 8)
			for j := range row {
				row[j] = float64(c)*5 + rng.NormFloat64()*0.2
			}
			rows = append(rows, row)
			labels = append(labels, c)
		}
	}
	proj := PCA(rows, 2, 60)
	// All cluster-0 points must be on one side of the midpoint of PC1.
	m0, m1, n0, n1 := 0.0, 0.0, 0, 0
	for i, p := range proj {
		if labels[i] == 0 {
			m0 += p[0]
			n0++
		} else {
			m1 += p[0]
			n1++
		}
	}
	m0 /= float64(n0)
	m1 /= float64(n1)
	if math.Abs(m0-m1) < 1 {
		t.Errorf("cluster means too close: %v vs %v", m0, m1)
	}
}

func TestPCAEdgeCases(t *testing.T) {
	if PCA(nil, 2, 10) != nil {
		t.Error("PCA(nil) should be nil")
	}
	if PCA([][]float64{{1, 2}}, 0, 10) != nil {
		t.Error("PCA with k=0 should be nil")
	}
	// Identical rows: projections all zero, no NaN.
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	proj := PCA(rows, 1, 10)
	for _, p := range proj {
		if math.IsNaN(p[0]) {
			t.Error("PCA produced NaN on degenerate input")
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got := len([]rune(s)); got != 8 {
		t.Fatalf("sparkline width = %d", got)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	// Downsampling keeps requested width.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := len([]rune(Sparkline(long, 10))); got != 10 {
		t.Errorf("downsampled width = %d", got)
	}
	// Constant series: no panic, all same level.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if len([]rune(flat)) != 3 {
		t.Error("flat sparkline broken")
	}
}

func TestSeriesSummary(t *testing.T) {
	s := SeriesSummary([]float64{1, 2, 3})
	if !strings.Contains(s, "min=1.0") || !strings.Contains(s, "max=3.0") {
		t.Errorf("SeriesSummary = %q", s)
	}
	if SeriesSummary(nil) != "(empty)" {
		t.Error("empty summary")
	}
}

func TestRankAlgorithms(t *testing.T) {
	got := RankAlgorithms(map[string]float64{"b": 2, "a": 5, "c": 1})
	if got[0] != "c" || got[2] != "a" {
		t.Errorf("RankAlgorithms = %v", got)
	}
}

func TestMAPEDelegation(t *testing.T) {
	// eval.MAPE must floor the denominator at MAPEFloor.
	got := MAPE([]float64{1}, []float64{0.0001})
	want := 100 * (1 - 0.0001) / MAPEFloor
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MAPE = %v, want %v", got, want)
	}
}

// Property: PCA projections are invariant to adding a constant offset to
// every row (centering).
func TestPCATranslationInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 8)
		shifted := make([][]float64, 8)
		off := rng.NormFloat64() * 100
		for i := range rows {
			rows[i] = make([]float64, 5)
			shifted[i] = make([]float64, 5)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
				shifted[i][j] = rows[i][j] + off
			}
		}
		a := PCA(rows, 1, 40)
		b := PCA(shifted, 1, 40)
		for i := range a {
			// Sign may flip; compare magnitudes.
			if math.Abs(math.Abs(a[i][0])-math.Abs(b[i][0])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
