// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure), the §6 scalability measurements, and the ablation studies of
// the design choices DESIGN.md calls out.
//
// Accuracy-style results are reported as custom benchmark metrics (MAPE%,
// accuracy%, ...) next to the usual ns/op, so
//
//	go test -bench=. -benchmem
//
// reproduces both the shape of the paper's numbers and the cost of
// producing them. All benches run at the reduced "quick" scale; the full
// 7-day evaluation is `go run ./cmd/experiments`.
package deeprest_test

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/des"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// runner provisions the shared quick-scale experiment runner once per
// process; the labs inside are cached, so each benchmark times only its own
// query/evaluation work plus any model it explicitly trains.
func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		p := experiments.DefaultParams(io.Discard)
		p.Quick = true
		p.Reps = 2
		benchRunner = experiments.NewRunner(p)
	})
	return benchRunner
}

// benchExperiment runs one registered experiment per iteration and reports
// a selection of its headline metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	r := runner(b)
	if _, err := r.Social(); err != nil { // provision outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		b.ReportMetric(res.Metrics[m], m)
	}
}

func BenchmarkFig9LearningTraffic(b *testing.B) {
	benchExperiment(b, "fig9", "mean_peaks_per_day")
}

func BenchmarkFig10ComposeDominated(b *testing.B) {
	benchExperiment(b, "fig10", "cpu_deeprest_mape", "write_iops_deeprest_mape")
}

func BenchmarkFig11ReadDominated(b *testing.B) {
	benchExperiment(b, "fig11", "iops_ratio_deeprest", "iops_ratio_simple")
}

func BenchmarkFig12Heatmap(b *testing.B) {
	benchExperiment(b, "fig12", "mean_mape_deeprest", "mean_mape_simple")
}

func BenchmarkFig13QueryScenarios(b *testing.B) {
	benchExperiment(b, "fig13", "scale_3x_volume_ratio")
}

func BenchmarkFig14UnseenScale(b *testing.B) {
	benchExperiment(b, "fig14", "scale3_deeprest", "scale3_simple")
}

func BenchmarkFig15UnseenComposition(b *testing.B) {
	benchExperiment(b, "fig15", "unseen_deeprest", "unseen_simple")
}

func BenchmarkFig16UnseenShape(b *testing.B) {
	benchExperiment(b, "fig16", "2peak_to_flat_deeprest", "flat_to_2peak_deeprest")
}

func BenchmarkFig17Hotel3x(b *testing.B) {
	r := runner(b)
	if _, err := r.Hotel(); err != nil {
		b.Fatal(err)
	}
	benchExperiment(b, "fig17", "mape_deeprest", "mape_simple")
}

func BenchmarkFig18ShapeChangeExamples(b *testing.B) {
	benchExperiment(b, "fig18", "peakiness_deeprest", "peakiness_resrc_aware")
}

func BenchmarkTable1SynthAccuracy(b *testing.B) {
	benchExperiment(b, "table1", "min_accuracy")
}

func BenchmarkFig19Ransomware(b *testing.B) {
	benchExperiment(b, "fig19", "deeprest_false_positives", "baseline_false_positives")
}

func BenchmarkFig20Cryptojacking(b *testing.B) {
	benchExperiment(b, "fig20", "deeprest_true_positives", "deeprest_false_positives")
}

func BenchmarkFig21ExpertPCA(b *testing.B) {
	benchExperiment(b, "fig21", "separation_ratio")
}

func BenchmarkFig22MaskInterpretation(b *testing.B) {
	benchExperiment(b, "fig22", "dominance_correct_fraction")
}

// --- §6 scalability ---

// toyTelemetry builds a small learning corpus for the micro-benchmarks.
func toyTelemetry(b *testing.B, days int) *sim.Run {
	b.Helper()
	cluster, err := sim.NewCluster(app.Toy(), 1)
	if err != nil {
		b.Fatal(err)
	}
	prog := workload.Uniform(days, workload.DaySpec{
		Shape: workload.TwoPeak{}, Mix: workload.Mix{"/read": 0.7, "/write": 0.3}, PeakRPS: 40,
	})
	prog.WindowsPerDay = 48
	prog.WindowSeconds = 60
	run, err := cluster.Run(prog.Generate())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

func benchCfg() estimator.Config {
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 10
	cfg.AttentionEpochs = 0
	cfg.ChunkLen = 24
	return cfg
}

// BenchmarkScalabilityTrainExpert measures the per-expert training cost the
// paper reports as 5.4 s/expert on a GPU-backed PyTorch stack.
func BenchmarkScalabilityTrainExpert(b *testing.B) {
	run := toyTelemetry(b, 3)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: run.Usage[p]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimator.Train(run.Windows, usage, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityInference measures one-day inference per expert (the
// paper: 1.589 ms/expert/day).
func BenchmarkScalabilityInference(b *testing.B) {
	run := toyTelemetry(b, 3)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: run.Usage[p]}
	m, err := estimator.Train(run.Windows, usage, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	day := run.Windows[:48]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityInputDim measures how inference scales with the
// feature-space dimensionality (the paper: 10× and 100× larger inputs cost
// only 1.08× and 1.21× — here the cost of the dense input matmuls grows
// linearly, which the sub-benchmarks make visible).
func BenchmarkScalabilityInputDim(b *testing.B) {
	for _, mult := range []int{1, 10, 100} {
		b.Run(map[int]string{1: "x1", 10: "x10", 100: "x100"}[mult], func(b *testing.B) {
			run := toyTelemetry(b, 2)
			dim := padFeatureDim(run, mult)
			p := app.Pair{Component: "Service", Resource: app.CPU}
			usage := map[app.Pair][]float64{p: run.Usage[p]}
			cfg := benchCfg()
			cfg.Epochs = 2
			m, err := estimator.Train(dim, usage, cfg)
			if err != nil {
				b.Fatal(err)
			}
			day := dim[:48]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Predict(day); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// padFeatureDim synthesises extra distinct invocation paths by cloning each
// window's traces under renamed operations, multiplying the feature-space
// dimensionality.
func padFeatureDim(run *sim.Run, mult int) [][]trace.Batch {
	if mult <= 1 {
		return run.Windows
	}
	out := make([][]trace.Batch, len(run.Windows))
	suffixes := make([]string, mult-1)
	for i := range suffixes {
		suffixes[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	for w, batches := range run.Windows {
		nw := append([]trace.Batch{}, batches...)
		for _, sfx := range suffixes {
			for _, bt := range batches {
				clone := bt.Trace.Root.Clone()
				renameOps(clone, sfx)
				nw = append(nw, trace.Batch{Trace: trace.Trace{API: bt.Trace.API + sfx, Root: clone}, Count: bt.Count})
			}
		}
		out[w] = nw
	}
	return out
}

func renameOps(s *trace.Span, sfx string) {
	s.Operation += sfx
	for _, c := range s.Children {
		renameOps(c, sfx)
	}
}

// BenchmarkTrainParallelism compares serial and pooled per-expert training
// (Config.Parallelism) over the full multi-expert toy model. Experts train
// from per-expert deterministic seeds, so the worker count changes only the
// wall-clock, never the resulting model (see
// estimator.TestTrainParallelismDeterministic).
func BenchmarkTrainParallelism(b *testing.B) {
	run := toyTelemetry(b, 2)
	pooled := runtime.GOMAXPROCS(0)
	if pooled < 2 {
		pooled = 2 // still exercise the pool on single-core machines
	}
	for _, workers := range []int{1, pooled} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := estimator.Train(run.Windows, run.Usage, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkScalabilityModelSize reports the per-expert parameter count (the
// paper: 801.5 kB/expert).
func BenchmarkScalabilityModelSize(b *testing.B) {
	run := toyTelemetry(b, 2)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	usage := map[app.Pair][]float64{p: run.Usage[p]}
	cfg := benchCfg()
	cfg.Epochs = 1
	var m *estimator.Model
	var err error
	for i := 0; i < b.N; i++ {
		m, err = estimator.Train(run.Windows, usage, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Experts[p].NumParams()), "params/expert")
	b.ReportMetric(float64(m.Experts[p].NumParams()*8)/1024, "KiB/expert")
}

// BenchmarkSimulatorStep measures the substrate itself: one telemetry
// window of the full social network at peak load.
func BenchmarkSimulatorStep(b *testing.B) {
	cluster, err := sim.NewCluster(app.SocialNetwork(), 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := map[string]int{}
	mix := workload.SocialDefaultMix().Normalize()
	for api, frac := range mix {
		reqs[api] = int(frac * 60 * 300)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Step(reqs, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures Algorithm 2 over one day of social
// network traces.
func BenchmarkFeatureExtraction(b *testing.B) {
	r := runner(b)
	l, err := r.Social()
	if err != nil {
		b.Fatal(err)
	}
	space := l.System.Model().Space
	day := l.LearnRun.Windows[:l.WPD]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.ExtractSeries(day)
	}
	b.ReportMetric(float64(space.Dim()), "feature-dim")
}

// --- ablations (DESIGN.md §4) ---

// benchAblation trains the social write-IOps expert under a modified
// configuration and reports the read-dominated-query MAPE — the metric the
// attribution-sensitive design choices exist to improve.
func benchAblation(b *testing.B, mod func(*estimator.Config)) {
	r := runner(b)
	l, err := r.Social()
	if err != nil {
		b.Fatal(err)
	}
	target := app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteIOps}
	usage := map[app.Pair][]float64{target: l.LearnRun.Usage[target]}
	cfg := estimator.DefaultConfig()
	cfg.Hidden = 4
	cfg.Epochs = 30
	cfg.AttentionEpochs = 0
	cfg.ChunkLen = 24
	mod(&cfg)

	query := l.LearnTraffic.Slice(0, l.WPD) // reuse geometry for a query day
	synthetic, err := l.System.Synthesizer().Synthesize(query, 1)
	if err != nil {
		b.Fatal(err)
	}
	truth := l.LearnRun.Slice(0, l.WPD)

	var mape float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := estimator.Train(l.LearnRun.Windows, usage, cfg)
		if err != nil {
			b.Fatal(err)
		}
		est, err := m.Predict(synthetic)
		if err != nil {
			b.Fatal(err)
		}
		mape = eval.MAPE(est[target].Exp, truth.Usage[target])
	}
	b.ReportMetric(mape, "MAPE%")
}

func BenchmarkAblationFull(b *testing.B) {
	benchAblation(b, func(c *estimator.Config) {})
}

func BenchmarkAblationNoMask(b *testing.B) {
	benchAblation(b, func(c *estimator.Config) { c.UseMask = false; c.MaskL1 = 0 })
}

func BenchmarkAblationNoBypass(b *testing.B) {
	benchAblation(b, func(c *estimator.Config) { c.LinearBypass = false })
}

func BenchmarkAblationNoL1(b *testing.B) {
	benchAblation(b, func(c *estimator.Config) { c.MaskL1 = 0; c.BypassL1 = 0 })
}

func BenchmarkAblationMSEInsteadOfQuantile(b *testing.B) {
	// Approximated by collapsing the interval: δ→0 trains all three
	// heads toward the median, so the intervals lose calibration.
	benchAblation(b, func(c *estimator.Config) { c.Delta = 0.0 })
}

// BenchmarkAblationAttention compares full-model prediction cost and
// accuracy with and without the cross-component attention stage.
func BenchmarkAblationAttention(b *testing.B) {
	run := toyTelemetry(b, 3)
	for _, attn := range []bool{true, false} {
		name := "with"
		if !attn {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.UseAttention = attn
			if attn {
				cfg.AttentionEpochs = 3
			}
			m, err := estimator.Train(run.Windows, run.Usage, cfg)
			if err != nil {
				b.Fatal(err)
			}
			p := app.Pair{Component: "DB", Resource: app.CPU}
			var mape float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est, err := m.Predict(run.Windows)
				if err != nil {
					b.Fatal(err)
				}
				mape = eval.MAPE(est[p].Exp, run.Usage[p])
			}
			b.ReportMetric(mape, "insample-MAPE%")
		})
	}
}

// BenchmarkDESSocialNetwork measures the request-level discrete-event
// simulator pushing one simulated minute of peak social-network traffic
// (events/second of simulation throughput).
func BenchmarkDESSocialNetwork(b *testing.B) {
	spec := app.SocialNetwork()
	arrivals := map[string]float64{}
	for api, frac := range workload.SocialDefaultMix().Normalize() {
		arrivals[api] = frac * 40
	}
	b.ResetTimer()
	var completed int
	for i := 0; i < b.N; i++ {
		res, err := des.Run(spec, des.Config{
			Arrivals: arrivals, Duration: 60, Warmup: 5,
			Service: des.Exponential, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		completed = res.Completed
	}
	b.ReportMetric(float64(completed), "requests/run")
}

// BenchmarkExtAutoscale, BenchmarkExtShallow, and BenchmarkExtDrift cover
// the extension experiments (paper §2, §3, §6).
func BenchmarkExtAutoscale(b *testing.B) {
	benchExperiment(b, "autoscale", "violations_deeprest", "waste_deeprest")
}

func BenchmarkExtShallow(b *testing.B) {
	benchExperiment(b, "shallow", "linear_wins", "poly_wins")
}

func BenchmarkExtDrift(b *testing.B) {
	benchExperiment(b, "drift", "ComposePostService_cpu_before", "ComposePostService_cpu_after")
}
