// Command deeprestd runs DeepRest as a long-lived HTTP service — the
// deployment mode the paper envisions for on-premises clusters and clouds
// (§1). Telemetry adapters push windows to it, the operator triggers
// learning, and any tool can then query resource allocations or sanity
// checks over JSON.
//
//	deeprestd -addr :8080 [-anonymize] [-salt S] [-hidden N] [-epochs N]
//	          [-retrain-every D] [-window N] [-checkpoint-dir DIR] [-history N]
//
// Endpoints (see internal/service):
//
//	POST /v1/telemetry  POST /v1/learn  GET /v1/status
//	POST /v1/estimate   POST /v1/sanity GET /v1/influence  GET /v1/model
//	POST /v1/pipeline/start  POST /v1/pipeline/stop  GET /v1/pipeline/status
//	GET  /v1/models     POST /v1/models/{version}/activate
//
// With -retrain-every the continuous-learning loop starts automatically:
// the daemon retrains on fresh telemetry at that cadence (and early when
// drift is detected), publishing each generation atomically while queries
// keep serving the previous one. With -checkpoint-dir every generation is
// checkpointed to disk and recovered at the next boot, so a restart comes
// back serving the exact model it went down with.
//
// A quick demo against a simulated deployment:
//
//	go run ./cmd/deeprest export -quick -o telemetry.json
//	go run ./cmd/deeprestd -addr :8080 -retrain-every 15m -checkpoint-dir ./ckpt &
//	curl --data-binary @telemetry.json localhost:8080/v1/telemetry
//	curl -X POST localhost:8080/v1/learn -d '{}'
//	curl localhost:8080/v1/status
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	anonymize := flag.Bool("anonymize", false, "hash component/operation/API names before learning")
	salt := flag.String("salt", "", "anonymisation salt")
	hidden := flag.Int("hidden", 0, "GRU width override (0 = default)")
	epochs := flag.Int("epochs", 0, "training epochs override (0 = default)")
	retrainEvery := flag.Duration("retrain-every", 0, "background retrain cadence (0 = loop not started)")
	window := flag.Int("window", 0, "sliding window: train on the last N telemetry windows (0 = all)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for model checkpoints (empty = in-memory only)")
	history := flag.Int("history", 0, "model generations to retain (0 = default)")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Anonymize = *anonymize
	opts.HashSalt = *salt
	opts.Log = os.Stdout
	if *hidden > 0 {
		opts.Estimator.Hidden = *hidden
	}
	if *epochs > 0 {
		opts.Estimator.Epochs = *epochs
	}

	pcfg := pipeline.DefaultConfig()
	if *retrainEvery > 0 {
		pcfg.Interval = *retrainEvery
		pcfg.DriftEvery = 0 // re-derive from the interval
	}
	pcfg.Window = *window
	pcfg.CheckpointDir = *checkpointDir
	if *history > 0 {
		pcfg.MaxHistory = *history
	}

	svc, err := service.NewWithConfig(opts, pcfg)
	if err != nil {
		log.Fatalf("deeprestd: %v", err)
	}
	pipe := svc.Pipeline()
	if *checkpointDir != "" {
		n, err := pipe.Recover()
		if err != nil {
			log.Fatalf("deeprestd: checkpoint recovery: %v", err)
		}
		if n > 0 {
			log.Printf("deeprestd: recovered %d model generation(s), serving v%d",
				n, pipe.Active().Version)
		}
	}
	if *retrainEvery > 0 {
		if err := pipe.Start(); err != nil {
			log.Fatalf("deeprestd: %v", err)
		}
		log.Printf("deeprestd: continuous learning every %v (drift checks every %v)",
			pcfg.Interval, pipe.DriftEvery())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("deeprestd listening on %s (anonymize=%v)", *addr, *anonymize)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("deeprestd: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	log.Print("deeprestd: shutting down")
	pipe.Stop() // waits for an in-flight generation; checkpoints are on disk
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("deeprestd: shutdown: %v", err)
	}
}
