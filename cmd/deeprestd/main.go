// Command deeprestd runs DeepRest as a long-lived HTTP service — the
// deployment mode the paper envisions for on-premises clusters and clouds
// (§1). Telemetry adapters push windows to it, the operator triggers
// learning, and any tool can then query resource allocations or sanity
// checks over JSON.
//
//	deeprestd -addr :8080 [-anonymize] [-salt S] [-hidden N] [-epochs N]
//
// Endpoints (see internal/service):
//
//	POST /v1/telemetry  POST /v1/learn  GET /v1/status
//	POST /v1/estimate   POST /v1/sanity GET /v1/influence  GET /v1/model
//
// A quick demo against a simulated deployment:
//
//	go run ./cmd/deeprest export -quick -o telemetry.json
//	go run ./cmd/deeprestd -addr :8080 &
//	curl --data-binary @telemetry.json localhost:8080/v1/telemetry
//	curl -X POST localhost:8080/v1/learn -d '{}'
//	curl localhost:8080/v1/status
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	anonymize := flag.Bool("anonymize", false, "hash component/operation/API names before learning")
	salt := flag.String("salt", "", "anonymisation salt")
	hidden := flag.Int("hidden", 0, "GRU width override (0 = default)")
	epochs := flag.Int("epochs", 0, "training epochs override (0 = default)")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Anonymize = *anonymize
	opts.HashSalt = *salt
	opts.Log = os.Stdout
	if *hidden > 0 {
		opts.Estimator.Hidden = *hidden
	}
	if *epochs > 0 {
		opts.Estimator.Epochs = *epochs
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.New(opts).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("deeprestd listening on %s (anonymize=%v)", *addr, *anonymize)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("deeprestd: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	log.Print("deeprestd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("deeprestd: shutdown: %v", err)
	}
}
