// Command deeprestd runs DeepRest as a long-lived HTTP service — the
// deployment mode the paper envisions for on-premises clusters and clouds
// (§1). Telemetry adapters push windows to it, the operator triggers
// learning, and any tool can then query resource allocations or sanity
// checks over JSON.
//
//	deeprestd -addr :8080 [-app APP] [-bootstrap-days N] [-anonymize] [-salt S]
//	          [-fleet MANIFEST] [-train-workers N] [-max-tenants N]
//	          [-ingest-rate R] [-ingest-burst N]
//	          [-hidden N] [-epochs N]
//	          [-retrain-every D] [-window N] [-retention N] [-checkpoint-dir DIR]
//	          [-history N] [-max-inflight N] [-request-timeout D] [-fault-spec SPEC]
//	          [-predict-batch-window D] [-predict-workers N]
//	          [-quality-horizon D] [-quality-retrain-threshold PCT]
//	          [-log-level L] [-log-format text|json] [-pprof] [-debug-addr A]
//
// With -app the daemon bootstraps its telemetry store from a simulated
// deployment of the named application before listening — APP is
// social|hotel|media, @FILE (a topology DSL document), or
// gen:seed=N,components=N for a generated topology — so `deeprestd -app
// gen:seed=7,components=60 -retrain-every 15m` is a self-contained demo of
// the full service against a production-scale topology.
//
// Endpoints (see internal/service):
//
//	POST /v1/telemetry  POST /v1/learn  GET /v1/status
//	POST /v1/estimate   POST /v1/sanity GET /v1/influence  GET /v1/model
//	POST /v1/pipeline/start  POST /v1/pipeline/stop  GET /v1/pipeline/status
//	GET  /v1/models     POST /v1/models/{version}/activate
//	GET  /v1/quality    (shadow-scoring scoreboard: rolling error + calibration)
//	GET  /v1/version    GET /metrics (Prometheus text format; always on)
//
// With -fleet the daemon serves many applications at once (internal/fleet):
// the manifest declares one tenant per application, each with its own
// telemetry store, model generations, and quality scoreboard, addressed at
// /v1/t/{app}/... (the un-prefixed routes above alias the default tenant,
// so single-app clients keep working). Tenants can also be created and
// retired at runtime via POST /v1/tenants and DELETE /v1/tenants/{app};
// GET /v1/fleet reports per-tenant status. Training is shared: one bounded
// worker pool (-train-workers) driven by a fair round-robin scheduler
// replaces per-tenant retrain loops, -ingest-rate/-ingest-burst shed a
// flooding tenant's telemetry with 429 + Retry-After, and -max-inflight
// bounds each tenant's concurrent requests (503). Checkpoints nest per
// tenant under -checkpoint-dir, and every metric series and stage span
// carries an app="..." label.
//
// With -retrain-every the continuous-learning loop starts automatically:
// the daemon retrains on fresh telemetry at that cadence (and early when
// drift is detected), publishing each generation atomically while queries
// keep serving the previous one. With -checkpoint-dir every generation is
// checkpointed to disk and recovered at the next boot, so a restart comes
// back serving the exact model it went down with.
//
// Resilience: -max-inflight bounds admitted requests (excess is shed with
// 503 + Retry-After), -request-timeout puts a deadline on every request's
// context, and -fault-spec arms a deterministic control-plane fault schedule
// (injected retrain failures, checkpoint corruption) for resilience drills —
// while faults fire, queries keep serving the last good model generation.
//
// Prediction quality: the daemon continuously shadow-scores the active
// model against arriving telemetry (internal/quality) and serves the
// rolling scoreboard at GET /v1/quality plus deeprest_quality_* Prometheus
// series. -quality-horizon caps the longest rolling report horizon;
// -quality-retrain-threshold arms the feedback loop — when the aggregate
// sMAPE stays above the threshold for 8 consecutive windows, the pipeline
// schedules an early retrain (trigger "quality") just like drift does.
//
// Observability: the daemon self-instruments through internal/obs and
// serves the registry at GET /metrics on the main listener. Stage spans
// around ingest, extraction, scoring, training, checkpointing, and serving
// swaps are recorded in a fixed in-process ring and served at
// GET /debug/spans. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ (plus /debug/spans) on the main listener; -debug-addr
// starts a second, operator-only listener carrying /metrics, /debug/spans,
// and /debug/pprof/ so profiling never has to face application clients. Logs
// are structured (log/slog) on stderr; -log-level and -log-format pick
// severity and text/json rendering. SIGINT or SIGTERM shut the daemon down
// gracefully: the retraining loop drains, then the listeners stop.
//
// A quick demo against a simulated deployment:
//
//	go run ./cmd/deeprest export -quick -o telemetry.json
//	go run ./cmd/deeprestd -addr :8080 -retrain-every 15m -checkpoint-dir ./ckpt &
//	curl --data-binary @telemetry.json localhost:8080/v1/telemetry
//	curl -X POST localhost:8080/v1/learn -d '{}'
//	curl localhost:8080/v1/status
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/estimator/infer"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	appArg := flag.String("app", "",
		"bootstrap the telemetry store from a simulated application before listening: social|hotel|media, @spec.json, or gen:seed=N,components=N (empty = start with no telemetry)")
	bootstrapDays := flag.Int("bootstrap-days", 2, "days of simulated telemetry to bootstrap with (-app only)")
	anonymize := flag.Bool("anonymize", false, "hash component/operation/API names before learning")
	salt := flag.String("salt", "", "anonymisation salt")
	hidden := flag.Int("hidden", 0, "GRU width override (0 = default)")
	epochs := flag.Int("epochs", 0, "training epochs override (0 = default)")
	fleetPath := flag.String("fleet", "",
		"fleet manifest (JSON, see internal/fleet): boot multi-tenant, one application per manifest entry, served at /v1/t/{app}/... (empty = single-app mode)")
	trainWorkers := flag.Int("train-workers", 0, "fleet mode: shared training worker-pool size (0 = 2)")
	maxTenants := flag.Int("max-tenants", 0, "fleet mode: resident tenant bound (0 = 64)")
	ingestRate := flag.Float64("ingest-rate", 0, "fleet mode: per-tenant sustained telemetry ingests per second before shedding with 429 (0 = unbounded)")
	ingestBurst := flag.Int("ingest-burst", 0, "fleet mode: per-tenant ingest burst allowance (0 = max(2*rate, 4))")
	retrainEvery := flag.Duration("retrain-every", 0, "background retrain cadence (0 = loop not started)")
	window := flag.Int("window", 0, "sliding window: train on the last N telemetry windows (0 = all)")
	retention := flag.Int("retention", 0, "telemetry retention horizon in windows: the store is a ring buffer evicting the oldest window past this bound (0 = 2x -window when -window is set, else unbounded; negative = unbounded)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for model checkpoints (empty = in-memory only)")
	history := flag.Int("history", 0, "model generations to retain (0 = default)")
	maxInflight := flag.Int("max-inflight", 0, "admission bound: concurrent API requests before shedding with 503 (0 = unbounded)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline propagated through handler contexts (0 = none)")
	predictBatchWindow := flag.Duration("predict-batch-window", 0, "bounded wait to grow an estimate micro-batch before one coalesced inference pass (e.g. 2ms; 0 = dispatch immediately, coalescing only requests arriving mid-pass)")
	predictWorkers := flag.Int("predict-workers", 0, "shared inference worker-pool size for engine predictions (0 = GOMAXPROCS)")
	faultSpec := flag.String("fault-spec", "", "deterministic control-plane fault scenario, e.g. \"seed=1;retrainfail:prob=0.3\" (see internal/faults; for resilience drills)")
	qualityHorizon := flag.Duration("quality-horizon", 24*time.Hour, "longest rolling shadow-scoring horizon served at /v1/quality")
	qualityThreshold := flag.Float64("quality-retrain-threshold", 0, "aggregate sMAPE (percent) that, sustained over 8 scored windows, triggers an early retrain (0 = observe only)")
	logLevel := flag.String("log-level", "info", "log severity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log rendering: text or json")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ on the main listener")
	debugAddr := flag.String("debug-addr", "", "separate operator listener for /metrics and /debug/pprof/ (empty = off)")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deeprestd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...interface{}) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	metrics := obs.NewRegistry()
	buildinfo.Register(metrics)
	tracer := obs.NewSpanTracer(512, 1)
	opts := core.DefaultOptions()
	opts.Anonymize = *anonymize
	opts.HashSalt = *salt
	opts.Log = os.Stdout
	opts.Metrics = metrics
	opts.Logger = logger
	opts.Tracer = tracer
	if *hidden > 0 {
		opts.Estimator.Hidden = *hidden
	}
	if *epochs > 0 {
		opts.Estimator.Epochs = *epochs
	}

	pcfg := pipeline.DefaultConfig()
	if *retrainEvery > 0 {
		pcfg.Interval = *retrainEvery
		pcfg.DriftEvery = 0 // re-derive from the interval
	}
	pcfg.Window = *window
	pcfg.CheckpointDir = *checkpointDir
	if *history > 0 {
		pcfg.MaxHistory = *history
	}
	if *faultSpec != "" {
		sched, err := faults.Compile(*faultSpec)
		if err != nil {
			fatal("bad -fault-spec", "error", err)
		}
		pcfg.Faults = sched
		if sched.TouchesSim() {
			logger.Warn("fault spec contains simulator-facing injectors; the daemon only applies control-plane faults (retrainfail, ckptcorrupt)")
		}
		logger.Warn("fault injection armed — this daemon will deliberately fail", "spec", *faultSpec)
	}

	if *predictWorkers > 0 {
		infer.SetDefaultWorkers(*predictWorkers)
	}
	if *qualityThreshold > 0 {
		logger.Info("quality-regression retrain gate armed",
			"smape_threshold_pct", *qualityThreshold, "horizon", *qualityHorizon)
	}
	// The default horizon keeps the training window plus the same again as
	// query slack, so scheduled retrains and recent-range sanity checks
	// always find their telemetry resident.
	resolvedRetention := 0
	switch {
	case *retention > 0:
		resolvedRetention = *retention
	case *retention == 0 && *window > 0:
		resolvedRetention = 2 * *window
	}
	if resolvedRetention > 0 && *window > resolvedRetention {
		logger.Warn("-window exceeds -retention; training degrades to the resident windows",
			"window", *window, "retention", resolvedRetention)
	}
	if resolvedRetention > 0 {
		logger.Info("telemetry retention armed", "windows", resolvedRetention)
	}

	var handler http.Handler
	var stopTraining func()
	if *fleetPath != "" {
		// Fleet mode: the manifest declares the tenants; each gets its own
		// service instance (telemetry ring, model registry, quality board)
		// behind /v1/t/{app}/..., while training shares one bounded worker
		// pool. Legacy un-prefixed routes alias the default tenant.
		manifest, err := fleet.LoadManifest(*fleetPath)
		if err != nil {
			fatal("fleet manifest rejected", "path", *fleetPath, "error", err)
		}
		fl := fleet.New(fleet.Config{
			Opts:               opts,
			Pipeline:           pcfg,
			MaxTenants:         *maxTenants,
			TrainWorkers:       *trainWorkers,
			MaxInflight:        *maxInflight,
			IngestRate:         *ingestRate,
			IngestBurst:        *ingestBurst,
			RequestTimeout:     *requestTimeout,
			Retention:          resolvedRetention,
			PredictBatchWindow: *predictBatchWindow,
			QualityHorizon:     *qualityHorizon,
			QualityThreshold:   *qualityThreshold,
		})
		// -app alongside -fleet adds a tenant named "default" from that
		// spec, created first so the legacy routes alias it.
		if *appArg != "" {
			if _, err := fl.Create(fleet.TenantSpec{
				App: "default", Spec: *appArg, BootstrapDays: *bootstrapDays,
			}); err != nil {
				fatal("default tenant failed", "app", *appArg, "error", err)
			}
		}
		for _, ts := range manifest.Tenants {
			t, err := fl.Create(ts)
			if err != nil {
				fatal("tenant creation failed", "tenant", ts.App, "error", err)
			}
			logger.Info("tenant resident", "app", t.ID, "spec", t.Spec,
				"windows", t.Server().Windows())
		}
		if *retrainEvery > 0 {
			fl.StartScheduler()
			logger.Info("fleet training scheduler started",
				"tenants", len(fl.Tenants()), "train_workers", fl.TrainWorkers(),
				"retrain_every", pcfg.Interval)
		}
		handler = fl.Handler()
		if *pprofOn {
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mux.Handle("GET /debug/spans", tracer.Handler())
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			handler = mux
		}
		stopTraining = fl.Close
	} else {
		svc, err := service.NewWithConfig(opts, pcfg)
		if err != nil {
			fatal("service construction failed", "error", err)
		}
		svc.EnablePprof = *pprofOn
		svc.MaxInflight = *maxInflight
		svc.RequestTimeout = *requestTimeout
		svc.PredictBatchWindow = *predictBatchWindow
		svc.QualityHorizon = *qualityHorizon
		svc.QualityThreshold = *qualityThreshold
		svc.Retention = resolvedRetention
		pipe := svc.Pipeline()
		if *checkpointDir != "" {
			n, err := pipe.Recover()
			if err != nil {
				fatal("checkpoint recovery failed", "dir", *checkpointDir, "error", err)
			}
			if n > 0 {
				logger.Info("recovered model generations",
					"generations", n, "serving_version", pipe.Active().Version)
			}
		}
		// Bootstrap after checkpoint recovery so the store picks up the
		// recovered generation's feature extractor on adoption.
		if *appArg != "" {
			run, err := bootstrapRun(*appArg, *bootstrapDays)
			if err != nil {
				fatal("bootstrap simulation failed", "app", *appArg, "error", err)
			}
			if err := svc.Bootstrap(run); err != nil {
				fatal("bootstrap ingest failed", "app", *appArg, "error", err)
			}
			logger.Info("telemetry store bootstrapped from simulation",
				"app", *appArg, "days", *bootstrapDays, "windows", len(run.Windows))
		}
		if *retrainEvery > 0 {
			if err := pipe.Start(); err != nil {
				fatal("continuous-learning loop failed to start", "error", err)
			}
			logger.Info("continuous learning started",
				"retrain_every", pcfg.Interval, "drift_check_every", pipe.DriftEvery())
		}
		handler = svc.Handler()
		stopTraining = pipe.Stop
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		logger.Info("listening", "addr", *addr, "version", buildinfo.String(),
			"anonymize", *anonymize, "pprof", *pprofOn)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listener failed", "error", err)
		}
	}()

	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(metrics, tracer),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal("debug listener failed", "error", err)
			}
		}()
	}

	// SIGINT (operator ^C) and SIGTERM (orchestrator stop, e.g. Kubernetes)
	// both trigger the same graceful shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	stopTraining() // waits for in-flight training; checkpoints are on disk
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown incomplete", "error", err)
	}
	if dbg != nil {
		if err := dbg.Shutdown(shutdownCtx); err != nil {
			logger.Warn("debug shutdown incomplete", "error", err)
		}
	}
}

// bootstrapRun simulates a learning period for the -app flag: diurnal
// traffic over the requested days against the resolved application, with
// the same window geometry the CLI's quick mode uses.
func bootstrapRun(appArg string, days int) (*sim.Run, error) {
	if days < 1 {
		days = 1
	}
	spec, mix, err := topo.Resolve(appArg)
	if err != nil {
		return nil, err
	}
	cluster, err := sim.NewCluster(spec, 101)
	if err != nil {
		return nil, err
	}
	prog := workload.Uniform(days, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: 30})
	prog.WindowsPerDay = 48
	prog.WindowSeconds = 60
	prog.Seed = 301
	return cluster.Run(prog.Generate())
}

// buildLogger assembles the daemon's structured logger from the -log-level
// and -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// debugMux is the operator-only listener: metrics, stage spans, and the
// full pprof surface, kept off the application-facing mux unless -pprof
// asks for it.
func debugMux(metrics *obs.Registry, tracer *obs.SpanTracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler())
	mux.Handle("GET /debug/spans", tracer.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
