// Command deeprest is the end-to-end CLI over a simulated deployment: it
// provisions one of the bundled applications, serves learning traffic,
// trains DeepRest, and then answers queries — mirroring how the system
// would be driven against a real cluster's telemetry.
//
// Subcommands:
//
//	learn     train a model from simulated or imported (-telemetry) telemetry
//	estimate  load a model and estimate resources for hypothetical traffic (Mode 1),
//	          either generated or read from a loadgen CSV (-traffic)
//	sanity    run an application sanity check over an attacked period (Mode 2)
//	synth     report trace-synthesizer statistics for hypothetical traffic
//	export    dump simulated telemetry as a JSON interchange stream
//	topology  emit the execution topology graph as Graphviz DOT (Figure 5)
//
// All state flows through the model file, so `deeprest learn` followed by
// `deeprest estimate` exercises serialization the way a real deployment
// would.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "sanity":
		err = cmdSanity(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "topology":
		err = cmdTopology(os.Args[2:])
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "deeprest: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deeprest: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deeprest <learn|estimate|sanity|synth|spec> [flags]

APP is social|hotel|media, @FILE (a topology DSL document), or
gen:seed=N,components=N[,apis=N,depth=N,fanout=N] (a generated topology).

  learn     -app APP -days N -model FILE [-seed N] [-quick]
  estimate  -app APP -model FILE -scale F [-shape 2peak|flat] [-days N]
  sanity    -app APP -attack ransomware|cryptojack|memleak [-quick]
  synth     -app APP [-quick]
  export    -app APP -o FILE [-quick]   (dump simulated telemetry as JSON)
  topology  -app APP [-o FILE] [-quick] (execution topology graph as Graphviz DOT)
  spec      validate FILE... | export -app APP [-o FILE] | generate -seed N -components N [-o FILE]
            (work with topology DSL documents; see examples/topologies/)`)
}

// labFlags bundles the options shared by subcommands.
type labFlags struct {
	app       string
	seed      int64
	quick     bool
	days      int
	model     string
	faultSpec string
}

func addLabFlags(fs *flag.FlagSet) *labFlags {
	lf := &labFlags{}
	fs.StringVar(&lf.app, "app", "social",
		"application: social|hotel|media, @spec.json, or gen:seed=N,components=N")
	fs.Int64Var(&lf.seed, "seed", 1, "random seed")
	fs.BoolVar(&lf.quick, "quick", false, "reduced scale for fast runs")
	fs.IntVar(&lf.days, "days", 0, "learning days (default 7, or 3 with -quick)")
	fs.StringVar(&lf.model, "model", "deeprest.model", "model file path")
	fs.StringVar(&lf.faultSpec, "fault-spec", "",
		"deterministic fault scenario for the simulation, e.g. \"seed=42;crash:comp=DB,from=10,to=15\" (see internal/faults)")
	return lf
}

func (lf *labFlags) spec() (*app.Spec, workload.Mix, error) {
	return topo.Resolve(lf.app)
}

func (lf *labFlags) geometry() (wpd int, windowSeconds float64, days int, peak float64) {
	wpd, windowSeconds, days, peak = 96, 300, 7, 60
	if lf.quick {
		wpd, windowSeconds, days, peak = 48, 60, 3, 30
	}
	if lf.days > 0 {
		days = lf.days
	}
	return wpd, windowSeconds, days, peak
}

func (lf *labFlags) estConfig() estimator.Config {
	cfg := estimator.DefaultConfig()
	cfg.Seed = lf.seed
	if lf.quick {
		cfg.ChunkLen = 24
	}
	return cfg
}

// simulateLearning provisions a cluster, serves the learning traffic, and
// returns the cluster plus a telemetry server holding the learning period.
func simulateLearning(lf *labFlags) (*sim.Cluster, *telemetry.Server, *workload.Traffic, error) {
	spec, mix, err := lf.spec()
	if err != nil {
		return nil, nil, nil, err
	}
	wpd, ws, days, peak := lf.geometry()
	cluster, err := sim.NewCluster(spec, lf.seed+100)
	if err != nil {
		return nil, nil, nil, err
	}
	if lf.faultSpec != "" {
		sched, err := faults.Compile(lf.faultSpec)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("-fault-spec: %w", err)
		}
		cluster.SetFaults(sched)
	}
	prog := workload.Uniform(days, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: peak})
	prog.WindowsPerDay = wpd
	prog.WindowSeconds = ws
	prog.Seed = lf.seed + 300
	traffic := prog.Generate()
	run, err := cluster.Run(traffic)
	if err != nil {
		return nil, nil, nil, err
	}
	ts := telemetry.NewServer(ws)
	ts.RecordRun(run)
	return cluster, ts, traffic, nil
}

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	lf := addLabFlags(fs)
	telemetryFile := fs.String("telemetry", "", "learn from a JSON telemetry dump instead of simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ts *telemetry.Server
	if *telemetryFile != "" {
		f, err := os.Open(*telemetryFile)
		if err != nil {
			return err
		}
		defer f.Close()
		ts, err = telemetry.ImportJSON(f)
		if err != nil {
			return err
		}
		fmt.Printf("learning phase: %d windows imported from %s\n", ts.NumWindows(), *telemetryFile)
	} else {
		var traffic *workload.Traffic
		var err error
		_, ts, traffic, err = simulateLearning(lf)
		if err != nil {
			return err
		}
		fmt.Printf("learning phase: %d windows, %d total requests\n", ts.NumWindows(), traffic.TotalRequests())
	}
	opts := core.DefaultOptions()
	opts.Estimator = lf.estConfig()
	opts.Log = os.Stdout
	sys, err := core.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		return err
	}
	f, err := os.Create(lf.model)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained %d experts; model saved to %s\n", len(sys.Pairs()), lf.model)
	sys.Model().Summary(os.Stdout)
	return nil
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	lf := addLabFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ts, _, err := simulateLearning(lf)
	if err != nil {
		return err
	}
	windows, err := ts.Traces(0, ts.NumWindows())
	if err != nil {
		return err
	}
	g := trace.NewTopology()
	for _, w := range windows {
		for _, b := range w {
			g.AddBatch(b)
		}
	}
	dot := g.DOT(lf.app)
	if *out == "" {
		fmt.Print(dot)
		return nil
	}
	if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
		return err
	}
	fmt.Printf("execution topology (%d nodes, %d edges) written to %s\n", g.NumNodes(), g.NumEdges(), *out)
	return nil
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	lf := addLabFlags(fs)
	scale := fs.Float64("scale", 2, "user-scale multiplier for the query day")
	shape := fs.String("shape", "2peak", "query traffic shape: 2peak or flat")
	trafficFile := fs.String("traffic", "", "query traffic from a loadgen-format CSV instead of generating it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, mix, err := lf.spec()
	if err != nil {
		return err
	}
	f, err := os.Open(lf.model)
	if err != nil {
		return fmt.Errorf("open model (run `deeprest learn` first): %w", err)
	}
	model, err := estimator.Load(f)
	f.Close()
	if err != nil {
		return err
	}

	// The synthesizer is rebuilt from a replayed learning phase (it is
	// not serialized; see core.System.Save).
	_, ts, _, err := simulateLearning(lf)
	if err != nil {
		return err
	}
	windows, err := ts.Traces(0, ts.NumWindows())
	if err != nil {
		return err
	}
	syn := synth.Learn(windows)

	wpd, ws, _, peak := lf.geometry()
	var sh workload.Shape = workload.TwoPeak{}
	if *shape == "flat" {
		sh = workload.Flat{}
	}
	var query *workload.Traffic
	if *trafficFile != "" {
		tf, err := os.Open(*trafficFile)
		if err != nil {
			return err
		}
		query, err = workload.ReadCSV(tf, ws, wpd)
		tf.Close()
		if err != nil {
			return err
		}
	} else {
		prog := workload.Uniform(1, workload.DaySpec{Shape: sh, Mix: mix, PeakRPS: peak * *scale})
		prog.WindowsPerDay = wpd
		prog.WindowSeconds = ws
		prog.Seed = lf.seed + 900
		query = prog.Generate()
	}

	synthetic, err := syn.Synthesize(query, lf.seed+11)
	if err != nil {
		return err
	}
	est, err := model.Predict(synthetic)
	if err != nil {
		return err
	}
	label := fmt.Sprintf("%.1fx users, %s shape", *scale, sh.Name())
	if *trafficFile != "" {
		label = "traffic from " + *trafficFile
	}
	fmt.Printf("resource allocation for %s (%d windows):\n", label, query.NumWindows())
	for _, p := range model.Pairs {
		e := est[p]
		fmt.Printf("  %-36s peak=%9.1f %-7s mean=%9.1f  %s\n",
			p, max(e.Up), p.Resource.Unit(), mean(e.Exp), eval.Sparkline(e.Exp, 48))
	}
	return nil
}

func mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

func max(s []float64) float64 {
	m := 0.0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

func cmdSanity(args []string) error {
	fs := flag.NewFlagSet("sanity", flag.ExitOnError)
	lf := addLabFlags(fs)
	attackKind := fs.String("attack", "ransomware", "attack to inject: ransomware, cryptojack, or memleak")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cluster, ts, _, err := simulateLearning(lf)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Estimator = lf.estConfig()
	sys, err := core.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		return err
	}

	// Serve two more days; the attack fires midway through day 2.
	spec := cluster.Spec()
	_, mixFor, err := lf.spec()
	if err != nil {
		return err
	}
	wpd, ws, _, peak := lf.geometry()
	prog := workload.Uniform(2, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mixFor, PeakRPS: peak})
	prog.WindowsPerDay = wpd
	prog.WindowSeconds = ws
	prog.Seed = lf.seed + 950
	check := prog.Generate()

	victim := attackVictim(lf.app, spec)
	if victim == "" {
		return fmt.Errorf("app %s has no stateful component to attack", spec.Name)
	}
	start := cluster.Window() + wpd + wpd/2
	switch *attackKind {
	case "ransomware":
		cluster.Inject(sim.Ransomware{Component: victim, FromWindow: start, ToWindow: start + wpd/8, ExtraCPU: 90, ExtraWriteOps: 400, ExtraWriteKiB: 800})
	case "cryptojack":
		cluster.Inject(sim.Cryptojack{Component: victim, FromWindow: start, ToWindow: 1 << 30, ExtraCPU: 70})
	case "memleak":
		cluster.Inject(sim.MemoryLeak{Component: victim, FromWindow: start, MiBPerWindow: 4})
	default:
		return fmt.Errorf("unknown attack %q", *attackKind)
	}
	run, err := cluster.Run(check)
	if err != nil {
		return err
	}
	actual := make(map[app.Pair][]float64)
	for _, p := range spec.ResourcePairs() {
		if p.Component == victim || p.Resource == app.CPU {
			actual[p] = run.Usage[p]
		}
	}
	events, err := sys.SanityCheck(run.Windows, actual, anomaly.NewDetector())
	if err != nil {
		return err
	}
	fmt.Printf("sanity check over %d windows with injected %s on %s (from window %d):\n",
		check.NumWindows(), *attackKind, victim, wpd+wpd/2)
	if len(events) == 0 {
		fmt.Println("  no anomalies detected")
	}
	for _, e := range events {
		fmt.Println(e.Format(nil))
	}
	return nil
}

// attackVictim picks the component the sanity-check attack targets: the
// storage components the scenario docs name for the bundled apps, or the
// first stateful component of any other topology.
func attackVictim(appArg string, spec *app.Spec) string {
	switch appArg {
	case "social":
		return "PostStorageMongoDB"
	case "hotel":
		return "ReserveMongoDB"
	}
	for _, c := range spec.Components {
		if c.Stateful {
			return c.Name
		}
	}
	return ""
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	lf := addLabFlags(fs)
	out := fs.String("o", "telemetry.json", "output file for the telemetry dump")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ts, traffic, err := simulateLearning(lf)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ts.ExportJSON(f); err != nil {
		return err
	}
	fmt.Printf("exported %d windows (%d requests) to %s\n", ts.NumWindows(), traffic.TotalRequests(), *out)
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	lf := addLabFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ts, _, err := simulateLearning(lf)
	if err != nil {
		return err
	}
	windows, err := ts.Traces(0, ts.NumWindows())
	if err != nil {
		return err
	}
	syn := synth.Learn(windows)
	fmt.Println("trace synthesizer: learned Prob(path | API)")
	for _, api := range syn.APIs() {
		fmt.Printf("  %-20s %d invocation-path shapes:", api, syn.NumShapes(api))
		for i := 0; i < syn.NumShapes(api); i++ {
			fmt.Printf(" %.3f", syn.Prob(api, i))
		}
		fmt.Println()
	}
	return nil
}
