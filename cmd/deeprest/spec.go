package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topo"
)

// cmdSpec works with topology DSL documents:
//
//	spec validate FILE...                      strict-parse and validate documents
//	spec export -app APP [-o FILE]             export an app to the DSL
//	spec generate -seed N -components N [...]  emit a generated topology
func cmdSpec(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: deeprest spec <validate|export|generate> ...")
	}
	switch args[0] {
	case "validate":
		return specValidate(args[1:])
	case "export":
		return specExport(args[1:])
	case "generate":
		return specGenerate(args[1:])
	default:
		return fmt.Errorf("unknown spec subcommand %q (want validate, export, or generate)", args[0])
	}
}

func specValidate(files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: deeprest spec validate FILE...")
	}
	failed := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		doc, err := topo.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: ok (%s: %d components, %d APIs)\n",
			path, doc.Name, len(doc.Components), len(doc.APIs))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d documents failed validation", failed, len(files))
	}
	return nil
}

func specExport(args []string) error {
	fs := flag.NewFlagSet("spec export", flag.ExitOnError)
	appArg := fs.String("app", "social",
		"application: social|hotel|media, @spec.json, or gen:seed=N,components=N")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, mix, err := topo.Resolve(*appArg)
	if err != nil {
		return err
	}
	return writeDoc(topo.FromSpec(spec, mix), *out)
}

func specGenerate(args []string) error {
	fs := flag.NewFlagSet("spec generate", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	components := fs.Int("components", 60, "total component count")
	apis := fs.Int("apis", 0, "API count (default components/8, min 3)")
	depth := fs.Int("depth", 0, "max logic-tier call depth (default 4)")
	fanout := fs.Int("fanout", 0, "max fan-out per logic node (default 3)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := topo.Generate(topo.Config{
		Seed:       *seed,
		Components: *components,
		APIs:       *apis,
		MaxDepth:   *depth,
		MaxFanout:  *fanout,
	})
	return writeDoc(doc, *out)
}

func writeDoc(doc *topo.Document, out string) error {
	data := topo.Encode(doc)
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d components, %d APIs written to %s\n",
		doc.Name, len(doc.Components), len(doc.APIs), out)
	return nil
}
