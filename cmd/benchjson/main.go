// Command benchjson converts `go test -bench` output on stdin into a JSON
// report. The raw text is echoed to stdout unchanged so it can sit in the
// middle of a pipeline, and the structured report is written to -out.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/estimator | \
//	    go run ./cmd/benchjson -out BENCH_estimator.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "path for the JSON report (default stdout only)")
	flag.Parse()

	rep := report{Benchmarks: []benchResult{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTrainEpoch-8  3830  336440 ns/op  174984 B/op  55 allocs/op
//
// Unknown "value unit" pairs (custom b.ReportMetric units) land in Metrics.
func parseBenchLine(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	b := benchResult{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, true
}
