// Command webdemo serves the interactive comparison the paper's artifact
// ships as a web-based demo (Artifact Appendix A.5): precomputed estimation
// scenarios — unseen user scales, compositions, and shapes — plotted per
// method against the actual measurements.
//
//	webdemo [-addr :8090] [-seed N]
//
// The first page load provisions the quick-scale lab (a few seconds of
// training); subsequent loads serve precomputed results.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/webdemo"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	seed := flag.Int64("seed", 1, "random seed for the precomputed scenarios")
	flag.Parse()

	p := experiments.DefaultParams(os.Stdout)
	p.Quick = true
	p.Seed = *seed
	demo := webdemo.New(experiments.NewRunner(p))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           demo.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("webdemo listening on http://localhost%s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
