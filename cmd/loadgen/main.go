// Command loadgen is the standalone workload generator — the Locust stand-in
// (paper §5.1). It prints, per scrape window, the request count of every API
// endpoint, either as a CSV stream (for piping into other tools) or as a
// sparkline summary.
//
// Usage:
//
//	loadgen [-app APP] [-days N] [-shape 2peak|flat|1peak|high]
//	        [-peak RPS] [-scale F] [-format csv|summary] [-seed N]
//
// APP is social|hotel|media, @FILE (a topology DSL document), or
// gen:seed=N,components=N (a generated topology); the mix comes from the
// resolved application's per-API traffic weights.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	appName := flag.String("app", "social",
		"application mix: social|hotel|media, @spec.json, or gen:seed=N,components=N")
	days := flag.Int("days", 1, "number of days to generate")
	shapeName := flag.String("shape", "2peak", "traffic shape: 2peak, flat, 1peak, or high")
	peak := flag.Float64("peak", 60, "peak total requests per second")
	scale := flag.Float64("scale", 1, "user-scale multiplier")
	wpd := flag.Int("wpd", 96, "windows per day")
	windowSec := flag.Float64("window", 300, "window duration in seconds")
	format := flag.String("format", "summary", "output format: csv or summary")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	_, mix, err := topo.Resolve(*appName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	var shape workload.Shape
	switch *shapeName {
	case "2peak":
		shape = workload.TwoPeak{}
	case "flat":
		shape = workload.Flat{}
	case "1peak":
		shape = workload.OnePeak{}
	case "high":
		shape = workload.High{}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown shape %q\n", *shapeName)
		os.Exit(2)
	}

	prog := workload.Uniform(*days, workload.DaySpec{Shape: shape, Mix: mix, PeakRPS: *peak * *scale})
	prog.WindowsPerDay = *wpd
	prog.WindowSeconds = *windowSec
	prog.Seed = *seed
	traffic := prog.Generate()

	switch *format {
	case "csv":
		fmt.Printf("window,%s\n", strings.Join(traffic.APIs, ","))
		for w, counts := range traffic.Windows {
			row := make([]string, len(traffic.APIs)+1)
			row[0] = fmt.Sprint(w)
			for i, api := range traffic.APIs {
				row[i+1] = fmt.Sprint(counts[api])
			}
			fmt.Println(strings.Join(row, ","))
		}
	case "summary":
		fmt.Printf("%d days x %d windows (%gs each), shape=%s, peak=%.0f rps, total=%d requests\n",
			*days, *wpd, *windowSec, shape.Name(), *peak**scale, traffic.TotalRequests())
		for _, api := range traffic.APIs {
			s := traffic.Series(api)
			fmt.Printf("  %-20s %s (%s req/window)\n", api, eval.Sparkline(s, 72), eval.SeriesSummary(s))
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown format %q\n", *format)
		os.Exit(2)
	}
}
