// Command experiments regenerates the tables and figures of the DeepRest
// paper's evaluation (§5–§6) on the simulated testbed.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-reps N] [-app SPEC]... [ids...]
//
// With no IDs, every experiment runs in paper order. Use -list to see the
// available IDs. -quick shrinks the workload and training so the full suite
// completes in well under a minute (the default mirrors the paper's 7-day
// learning phase and takes a few minutes of pure-Go training).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// appList collects repeated -app flags for the topology-size sweep.
type appList []string

func (a *appList) String() string { return fmt.Sprint(*a) }
func (a *appList) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "reduced workload and training for fast runs")
	seed := flag.Int64("seed", 1, "random seed for all stages")
	reps := flag.Int("reps", 3, "query repetitions per scenario (paper: 9)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", true, "print headline metrics after each experiment")
	var apps appList
	flag.Var(&apps, "app",
		"application for the gensweep accuracy rows (repeatable): social|hotel|media, @spec.json, or gen:seed=N,components=N; default 30/100/300 generated sweep")
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}

	p := experiments.DefaultParams(os.Stdout)
	p.Quick = *quick
	p.Seed = *seed
	p.Reps = *reps
	p.Apps = apps
	r := experiments.NewRunner(p)

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.List()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *metrics {
			experiments.PrintMetrics(os.Stdout, res)
		}
		fmt.Printf("  (%s finished in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
}
