// Tests of the public deeprest package: the end-to-end flows a library user
// follows, exercised exclusively through the exported surface.
package deeprest_test

import (
	"bytes"
	"testing"

	deeprest "repro"
)

// publicFixture provisions a small deployment and its learning telemetry
// through the public API only.
func publicFixture(t *testing.T, seed int64) (*deeprest.Cluster, *deeprest.TelemetryServer, deeprest.Program) {
	t.Helper()
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), seed)
	if err != nil {
		t.Fatal(err)
	}
	program := deeprest.UniformProgram(2, deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.5, "/uploadMedia": 0.2},
		PeakRPS: 30,
	})
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	program.Seed = seed
	run, err := cluster.Run(program.Generate())
	if err != nil {
		t.Fatal(err)
	}
	ts := deeprest.NewTelemetryServer(program.WindowSeconds)
	ts.RecordRun(run)
	return cluster, ts, program
}

func quickOpts() deeprest.Options {
	opts := deeprest.DefaultOptions()
	opts.Estimator.Epochs = 10
	opts.Estimator.AttentionEpochs = 1
	opts.Estimator.ChunkLen = 24
	return opts
}

func TestPublicLearnEstimate(t *testing.T) {
	cluster, ts, program := publicFixture(t, 21)
	opts := quickOpts()
	opts.Pairs = []deeprest.Pair{
		{Component: "ComposePostService", Resource: deeprest.CPU},
		{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(system.Pairs()); got != 2 {
		t.Fatalf("Pairs = %d", got)
	}

	query := program
	query.Days = program.Days[:1]
	query.Seed = 99
	traffic := query.Generate()
	estimates, err := system.EstimateTraffic(traffic)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := cluster.Run(traffic)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range system.Pairs() {
		e := estimates[p]
		if len(e.Exp) != traffic.NumWindows() {
			t.Fatalf("%s: estimate length %d", p, len(e.Exp))
		}
		// Rough magnitude check: within 2x of the measured mean.
		em, am := mean(e.Exp), mean(truth.Usage[p])
		if em < am/2 || em > am*2 {
			t.Errorf("%s: estimated mean %.1f vs actual %.1f", p, em, am)
		}
	}
}

func TestPublicSanityCheckAndSaveLoad(t *testing.T) {
	cluster, ts, program := publicFixture(t, 22)
	victim := "PostStorageMongoDB"
	opts := quickOpts()
	opts.Pairs = []deeprest.Pair{
		{Component: victim, Resource: deeprest.CPU},
		{Component: victim, Resource: deeprest.Memory},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Save/load through the public surface.
	var buf bytes.Buffer
	if err := system.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := deeprest.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}

	// Inject a cryptojacker and check the alert fires.
	check := program
	check.Days = program.Days[:1]
	check.Seed = 123
	traffic := check.Generate()
	base := cluster.Window()
	cluster.Inject(deeprest.Cryptojack{Component: victim, FromWindow: base + 12, ToWindow: base + 30, ExtraCPU: 60})
	truth, err := cluster.Run(traffic)
	if err != nil {
		t.Fatal(err)
	}
	actual := map[deeprest.Pair][]float64{}
	for _, p := range opts.Pairs {
		actual[p] = truth.Usage[p]
	}
	events, err := system.SanityCheck(truth.Windows, actual, deeprest.NewDetector())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("cryptojack not detected through the public API")
	}
	if events[0].Component != victim {
		t.Errorf("event component = %s", events[0].Component)
	}
}

func TestPublicSpecs(t *testing.T) {
	if got := len(deeprest.SocialNetwork().Components); got != 29 {
		t.Errorf("social components = %d", got)
	}
	if got := len(deeprest.HotelReservation().APIs); got != 4 {
		t.Errorf("hotel APIs = %d", got)
	}
	if err := deeprest.SocialNetwork().Validate(); err != nil {
		t.Error(err)
	}
}

func mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t / float64(len(s))
}
