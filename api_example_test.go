package deeprest_test

import (
	"fmt"
	"log"

	deeprest "repro"
)

// Example_capacityPlanning shows the Mode-1 flow: learn from telemetry,
// then ask how many resources a 2x-traffic day would need. (The telemetry
// here comes from the bundled simulator; in production it comes from your
// tracing and metrics stack, e.g. via telemetry.ImportJaegerTraces and
// telemetry.ImportPrometheusMatrix.)
func Example_capacityPlanning() {
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), 1)
	if err != nil {
		log.Fatal(err)
	}
	day := deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.7},
		PeakRPS: 20,
	}
	program := deeprest.UniformProgram(2, day)
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	run, err := cluster.Run(program.Generate())
	if err != nil {
		log.Fatal(err)
	}
	store := deeprest.NewTelemetryServer(60)
	store.RecordRun(run)

	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{{Component: "ComposePostService", Resource: deeprest.CPU}}
	system, err := deeprest.Learn(store, 0, store.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}

	day.PeakRPS = 40 // the hypothetical 2x day
	query := deeprest.UniformProgram(1, day)
	query.WindowsPerDay = 48
	query.WindowSeconds = 60
	estimates, err := system.EstimateTraffic(query.Generate())
	if err != nil {
		log.Fatal(err)
	}
	for pair, est := range estimates {
		fmt.Printf("%s: %d windows estimated\n", pair, len(est.Exp))
	}
	// Output:
	// ComposePostService/cpu: 48 windows estimated
}

// Example_sanityCheck shows the Mode-2 flow: after learning, verify whether
// a served period's consumption is justified by its traffic.
func Example_sanityCheck() {
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), 2)
	if err != nil {
		log.Fatal(err)
	}
	day := deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.4, "/readTimeline": 0.6},
		PeakRPS: 20,
	}
	program := deeprest.UniformProgram(2, day)
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	run, err := cluster.Run(program.Generate())
	if err != nil {
		log.Fatal(err)
	}
	store := deeprest.NewTelemetryServer(60)
	store.RecordRun(run)

	victim := deeprest.Pair{Component: "PostStorageMongoDB", Resource: deeprest.CPU}
	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{victim}
	system, err := deeprest.Learn(store, 0, store.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// Serve another day with a cryptominer installed mid-day.
	check := deeprest.UniformProgram(1, day)
	check.WindowsPerDay = 48
	check.WindowSeconds = 60
	check.Seed = 7
	cluster.Inject(deeprest.Cryptojack{
		Component:  victim.Component,
		FromWindow: cluster.Window() + 20,
		ToWindow:   cluster.Window() + 40,
		ExtraCPU:   80,
	})
	served, err := cluster.Run(check.Generate())
	if err != nil {
		log.Fatal(err)
	}
	events, err := system.SanityCheck(served.Windows,
		map[deeprest.Pair][]float64{victim: served.Usage[victim]}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack detected on %s: %v\n", victim.Component, len(events) > 0)
	// Output:
	// attack detected on PostStorageMongoDB: true
}
