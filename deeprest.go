// Package deeprest is the public API of this DeepRest reproduction: deep,
// API-aware resource estimation for interactive microservices (Chow et al.,
// EuroSys '22).
//
// DeepRest learns, directly from production telemetry (distributed traces
// plus resource metrics), how each API endpoint of a microservice
// application consumes each resource of each component. A learned System
// answers two kinds of queries:
//
//   - resource allocation: "how much CPU / memory / write IOps / disk will
//     this hypothetical API traffic need?" — including traffic the
//     application has never served (more users, different API mixes,
//     different shapes);
//   - application sanity checks: "is the utilization we measured justified
//     by the traffic we actually served?" — flagging ransomware,
//     cryptojacking, and leaks whose consumption no API traffic explains.
//
// The package re-exports the stable surface of the internal implementation
// packages; see the examples directory for end-to-end usage, DESIGN.md for
// the architecture, and EXPERIMENTS.md for the paper-reproduction results.
package deeprest

import (
	"io"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Telemetry data model (what DeepRest consumes).
type (
	// Span is one operation performed by one component while serving a
	// request; spans form trees.
	Span = trace.Span
	// Trace is one recorded API request: endpoint plus span tree.
	Trace = trace.Trace
	// Batch groups identical traces within one scrape window.
	Batch = trace.Batch
	// Pair identifies one estimation target: a resource of a component.
	Pair = app.Pair
	// Resource enumerates the tracked resource kinds.
	Resource = app.Resource
	// TelemetryServer stores windows of traces and metrics.
	TelemetryServer = telemetry.Server
)

// Resource kinds.
const (
	CPU       = app.CPU
	Memory    = app.Memory
	WriteIOps = app.WriteIOps
	WriteTput = app.WriteTput
	DiskUsage = app.DiskUsage
)

// Learning and querying.
type (
	// System is a learned DeepRest instance.
	System = core.System
	// Options configures the learning phase.
	Options = core.Options
	// Config is the neural estimator configuration.
	Config = estimator.Config
	// Estimate is a per-pair utilization prediction with a confidence
	// interval.
	Estimate = estimator.Estimate
	// Model is the trained multi-expert estimator.
	Model = estimator.Model
	// Synthesizer converts hypothetical traffic into synthetic traces.
	Synthesizer = synth.Synthesizer
	// Event is one detected anomaly.
	Event = anomaly.Event
	// Detector tunes sanity-check thresholds.
	Detector = anomaly.Detector
)

// Traffic description.
type (
	// Traffic is a multivariate requests-per-window time series.
	Traffic = workload.Traffic
	// Program generates Traffic from shapes, mixes, and scales.
	Program = workload.Program
	// DaySpec describes one day of a Program.
	DaySpec = workload.DaySpec
	// Mix is an API composition.
	Mix = workload.Mix
)

// NewTelemetryServer returns an empty telemetry store with the given scrape
// window duration in seconds.
func NewTelemetryServer(windowSeconds float64) *TelemetryServer {
	return telemetry.NewServer(windowSeconds)
}

// DefaultOptions returns learning options with the default estimator
// configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultConfig returns the default neural estimator configuration.
func DefaultConfig() Config { return estimator.DefaultConfig() }

// Learn runs the application learning phase over windows [from, to) of a
// telemetry server.
func Learn(ts *TelemetryServer, from, to int, opts Options) (*System, error) {
	return core.Learn(ts, from, to, opts)
}

// LearnFromData learns from in-memory telemetry: per-window trace batches
// and aligned per-pair utilization series.
func LearnFromData(windows [][]Batch, usage map[Pair][]float64, opts Options) (*System, error) {
	return core.LearnFromData(windows, usage, opts)
}

// LoadModel deserializes an estimator model saved with System.Save or
// Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return estimator.Load(r) }

// NewDetector returns a sanity-check detector with default thresholds.
func NewDetector() *Detector { return anomaly.NewDetector() }

// Simulation harness (the paper's testbed stand-in), exported so library
// users can reproduce the evaluation or prototype against the bundled
// DeathStarBench-style applications without a cluster.
type (
	// AppSpec describes a microservice application for the simulator.
	AppSpec = app.Spec
	// Cluster is a simulated deployment of an AppSpec.
	Cluster = sim.Cluster
	// SimRun is the telemetry of a simulated traffic program.
	SimRun = sim.Run
)

// Traffic shapes and attack injectors, re-exported for building evaluation
// scenarios against the simulator.
type (
	// TwoPeak is the default diurnal shape (two peak hours per day).
	TwoPeak = workload.TwoPeak
	// Flat is a constant-intensity shape.
	Flat = workload.Flat
	// OnePeak has a single daily peak.
	OnePeak = workload.OnePeak
	// Ransomware injects CPU + write load on a stateful component.
	Ransomware = sim.Ransomware
	// Cryptojack injects sustained CPU theft.
	Cryptojack = sim.Cryptojack
	// MemoryLeak injects steadily growing memory.
	MemoryLeak = sim.MemoryLeak
)

// UniformProgram returns a traffic program repeating one day specification.
func UniformProgram(days int, spec DaySpec) Program {
	return workload.Uniform(days, spec)
}

// SocialNetwork returns the bundled DeathStarBench-style social network
// application (29 components, 11 APIs).
func SocialNetwork() *AppSpec { return app.SocialNetwork() }

// HotelReservation returns the bundled hotel reservation application
// (18 components, 4 APIs).
func HotelReservation() *AppSpec { return app.HotelReservation() }

// MediaMicroservices returns the bundled movie-review application
// (19 components, 6 APIs).
func MediaMicroservices() *AppSpec { return app.MediaMicroservices() }

// NewCluster deploys an application spec in the simulator.
func NewCluster(spec *AppSpec, seed int64) (*Cluster, error) {
	return sim.NewCluster(spec, seed)
}

// Topology as data: the declarative topology DSL and the seeded generator
// (see internal/topo), so applications can be loaded from JSON documents or
// synthesized at production scale instead of hand-coded in Go.
type (
	// Topology is a topology DSL document: an AppSpec plus per-API
	// traffic weights.
	Topology = topo.Document
	// TopologyConfig sizes a generated topology.
	TopologyConfig = topo.Config
	// TopologyError locates a problem in a topology document by line and
	// JSON path.
	TopologyError = topo.ParseError
)

// ParseTopology strictly decodes and validates a topology DSL document.
func ParseTopology(data []byte) (*Topology, error) { return topo.Parse(data) }

// EncodeTopology renders a document as canonical DSL JSON; the encoding
// round-trips through ParseTopology bit-identically.
func EncodeTopology(d *Topology) []byte { return topo.Encode(d) }

// GenerateTopology synthesizes a production-like topology from a seed and
// size knobs; the same config always yields the same document.
func GenerateTopology(cfg TopologyConfig) *Topology { return topo.Generate(cfg) }

// TopologyFromSpec lifts an application spec (plus an optional traffic mix)
// into a DSL document.
func TopologyFromSpec(spec *AppSpec, mix Mix) *Topology { return topo.FromSpec(spec, mix) }

// ResolveApp turns a CLI-style application argument — social|hotel|media,
// "@file.json", or "gen:seed=N,components=N" — into a spec and default mix.
func ResolveApp(arg string) (*AppSpec, Mix, error) { return topo.Resolve(arg) }
