// Interpreting a trained DeepRest model — the paper's §6 (Figures 21–22).
//
// Beyond estimation, the learned experts are themselves informative:
//
//   - occluding one API's invocation paths and measuring the output change
//     reveals which endpoints drive which resource (Figure 22) — e.g. which
//     APIs could be degraded without touching a given database's write path;
//   - the attention weights show which other (component, resource) experts
//     an expert listens to;
//   - projecting the experts' GRU parameters with PCA shows experts for
//     similar components (the MongoDBs) clustering, motivating transfer
//     learning (Figure 21).
//
// Run with: go run ./examples/interpret
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	deeprest "repro"
	"repro/internal/eval"
)

func main() {
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), 5)
	if err != nil {
		log.Fatal(err)
	}
	program := deeprest.UniformProgram(3, deeprest.DaySpec{
		Shape: deeprest.TwoPeak{},
		Mix: deeprest.Mix{
			"/composePost": 0.25, "/readTimeline": 0.40,
			"/uploadMedia": 0.15, "/getMedia": 0.20,
		},
		PeakRPS: 30,
	})
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	traffic := program.Generate()
	run, err := cluster.Run(traffic)
	if err != nil {
		log.Fatal(err)
	}
	ts := deeprest.NewTelemetryServer(60)
	ts.RecordRun(run)

	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{
		{Component: "ComposePostService", Resource: deeprest.CPU},
		{Component: "MediaMongoDB", Resource: deeprest.Memory},
		{Component: "PostStorageMongoDB", Resource: deeprest.CPU},
		{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps},
		{Component: "UserTimelineMongoDB", Resource: deeprest.CPU},
		{Component: "MediaMongoDB", Resource: deeprest.CPU},
		{Component: "UserTimelineService", Resource: deeprest.CPU},
		{Component: "MediaService", Resource: deeprest.CPU},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}
	model := system.Model()
	windows, err := ts.Traces(0, ts.NumWindows())
	if err != nil {
		log.Fatal(err)
	}

	// Figure-22-style: which APIs influence which resource?
	fmt.Println("learned API -> resource dependencies (occlusion influence, 0..1):")
	for _, p := range []deeprest.Pair{
		{Component: "MediaMongoDB", Resource: deeprest.Memory},
		{Component: "ComposePostService", Resource: deeprest.CPU},
		{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps},
		{Component: "PostStorageMongoDB", Resource: deeprest.CPU},
	} {
		infl, err := model.APIInfluence(p, windows)
		if err != nil {
			log.Fatal(err)
		}
		type kv struct {
			api string
			v   float64
		}
		var list []kv
		for api, v := range infl {
			if v >= 0.05 {
				list = append(list, kv{api, v})
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
		fmt.Printf("  %s:\n", p)
		for _, e := range list {
			fmt.Printf("    %-34s %s %.2f\n", e.api, strings.Repeat("#", int(e.v*24)), e.v)
		}
	}

	// Attention: who does the write-IOps expert listen to?
	fmt.Println("\ntop attention peers of PostStorageMongoDB/write_iops:")
	for _, pw := range model.AttentionReport(deeprest.Pair{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps}, 3) {
		fmt.Printf("  %-38s alpha=%+.4f\n", pw.Peer, pw.Alpha)
	}

	// Figure-21-style: PCA of the experts' recurrent parameters.
	fmt.Println("\nPCA of expert GRU parameters (MongoDB experts marked x):")
	pairs := system.Pairs()
	rows := make([][]float64, len(pairs))
	for i, p := range pairs {
		rows[i] = model.ExpertVector(p)
	}
	proj := eval.PCA(rows, 2, 60)
	for i, p := range pairs {
		mark := " "
		if strings.Contains(p.Component, "MongoDB") {
			mark = "x"
		}
		fmt.Printf("  [%s] %-38s (%7.3f, %7.3f)\n", mark, p, proj[i][0], proj[i][1])
	}
}
