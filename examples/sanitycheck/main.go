// Application sanity checks — the paper's §5.4: detect resource consumption
// that the served API traffic cannot justify.
//
// The example learns the social network's normal behaviour, then serves two
// more days during which (a) a ransomware process encrypts the post store
// and (b) a cryptominer steals CPU. A history-only monitor would also have
// flagged the benign flash-crowd morning we throw in; DeepRest justifies
// that via the traffic and alerts only on the attacks.
//
// Run with: go run ./examples/sanitycheck
package main

import (
	"fmt"
	"log"

	deeprest "repro"
)

const (
	wpd       = 48
	windowSec = 60
	peakRPS   = 30
)

func main() {
	spec := deeprest.SocialNetwork()
	cluster, err := deeprest.NewCluster(spec, 3)
	if err != nil {
		log.Fatal(err)
	}
	mix := deeprest.Mix{
		"/composePost": 0.25, "/readTimeline": 0.45,
		"/uploadMedia": 0.15, "/getMedia": 0.15,
	}

	// Learn three normal days.
	program := deeprest.UniformProgram(3, deeprest.DaySpec{Shape: deeprest.TwoPeak{}, Mix: mix, PeakRPS: peakRPS})
	program.WindowsPerDay = wpd
	program.WindowSeconds = windowSec
	learn := program.Generate()
	run, err := cluster.Run(learn)
	if err != nil {
		log.Fatal(err)
	}
	ts := deeprest.NewTelemetryServer(windowSec)
	ts.RecordRun(run)

	victim := "PostStorageMongoDB"
	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{
		{Component: victim, Resource: deeprest.CPU},
		{Component: victim, Resource: deeprest.Memory},
		{Component: victim, Resource: deeprest.WriteIOps},
		{Component: victim, Resource: deeprest.WriteTput},
		{Component: "FrontendNGINX", Resource: deeprest.CPU},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// Serve two more days. Day 1 is a benign flash crowd (constantly
	// high traffic); day 2 carries both attacks.
	check := deeprest.Program{
		Days: []deeprest.DaySpec{
			{Shape: deeprest.Flat{Level: 0.95}, Mix: mix, PeakRPS: peakRPS},
			{Shape: deeprest.TwoPeak{}, Mix: mix, PeakRPS: peakRPS},
		},
		WindowsPerDay: wpd,
		WindowSeconds: windowSec,
		DayJitter:     0.05,
		MixJitter:     0.15,
		NoiseCV:       0.06,
		Seed:          42,
	}
	checkTraffic := check.Generate()
	base := cluster.Window()
	cluster.Inject(deeprest.Ransomware{
		Component:  victim,
		FromWindow: base + wpd + 10, ToWindow: base + wpd + 16,
		ExtraCPU: 60, ExtraWriteOps: 300, ExtraWriteKiB: 600,
	})
	cluster.Inject(deeprest.Cryptojack{
		Component:  victim,
		FromWindow: base + wpd + 30, ToWindow: base + 2*wpd,
		ExtraCPU: 50,
	})
	truth, err := cluster.Run(checkTraffic)
	if err != nil {
		log.Fatal(err)
	}

	actual := make(map[deeprest.Pair][]float64, len(opts.Pairs))
	for _, p := range opts.Pairs {
		actual[p] = truth.Usage[p]
	}
	events, err := system.SanityCheck(truth.Windows, actual, deeprest.NewDetector())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sanity check over %d windows (day 1 = benign flash crowd, day 2 = attacks):\n\n", checkTraffic.NumWindows())
	if len(events) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	label := func(w int) string {
		return fmt.Sprintf("day %d %02d:%02d", w/wpd+1, (w%wpd)*24/wpd, (w%wpd*24*60/wpd)%60)
	}
	for _, e := range events {
		fmt.Println(e.Format(label))
	}
	fmt.Println("note: the flash-crowd day raised every metric but produced no alert —")
	fmt.Println("its consumption is justified by the traffic DeepRest saw in the traces.")
}
