// DeepRest as a service — the paper's §1 deployment vision, end to end over
// HTTP: a deeprestd instance receives telemetry from a (simulated) cluster,
// learns, and answers a capacity-planning query, all through the JSON API a
// real deployment would use. Anonymisation is on, so the traces' component,
// operation, and API names are hashed before they enter the model.
//
// Run with: go run ./examples/httpservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	deeprest "repro"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	// The service side: what `go run ./cmd/deeprestd -anonymize` hosts.
	opts := core.DefaultOptions()
	opts.Anonymize = true
	opts.HashSalt = "demo"
	opts.Pairs = []deeprest.Pair{
		{Component: "ComposePostService", Resource: deeprest.CPU},
		{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps},
	}
	ts := httptest.NewServer(service.New(opts).Handler())
	defer ts.Close()
	base := ts.URL
	fmt.Printf("deeprest service at %s (anonymized)\n\n", base)

	// The application side: a cluster whose telemetry stack exports the
	// interchange format.
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), 9)
	if err != nil {
		log.Fatal(err)
	}
	program := deeprest.UniformProgram(2, deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.5, "/uploadMedia": 0.2},
		PeakRPS: 30,
	})
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	run, err := cluster.Run(program.Generate())
	if err != nil {
		log.Fatal(err)
	}
	store := deeprest.NewTelemetryServer(60)
	store.RecordRun(run)
	var dump bytes.Buffer
	if err := store.ExportJSON(&dump); err != nil {
		log.Fatal(err)
	}

	// 1. Push the telemetry.
	post(base+"/v1/telemetry", dump.Bytes())
	fmt.Println("telemetry ingested")

	// 2. Learn.
	out := post(base+"/v1/learn", []byte(`{}`))
	fmt.Printf("learned: %s\n", out)

	// 3. Query: one day at 2x users, sent as raw per-window counts.
	query := deeprest.UniformProgram(1, deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.5, "/uploadMedia": 0.2},
		PeakRPS: 60,
	})
	query.WindowsPerDay = 48
	query.WindowSeconds = 60
	body, _ := json.Marshal(map[string]interface{}{
		"windows":         query.Generate().Windows,
		"windows_per_day": 48,
	})
	resp := post(base+"/v1/estimate", body)
	var est struct {
		Estimates map[string]struct {
			Exp  []float64 `json:"exp"`
			Up   []float64 `json:"up"`
			Unit string    `json:"unit"`
		} `json:"estimates"`
	}
	if err := json.Unmarshal(resp, &est); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nallocation for a 2x day (trace/API semantics were hashed before")
	fmt.Println("entering the model; the metric keys identify the estimation targets):")
	keys := make([]string, 0, len(est.Estimates))
	for k := range est.Estimates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := est.Estimates[k]
		peak := 0.0
		for _, v := range e.Up {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("  %-40s allocate for peak %8.1f %s\n", k, peak, e.Unit)
	}
}

// post sends a JSON/body POST and returns the response body, exiting on any
// HTTP error.
func post(url string, body []byte) []byte {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}
