// Quickstart: the minimal end-to-end DeepRest flow on a simulated
// deployment of the bundled social network application.
//
//  1. Deploy the app in the simulator and serve three days of two-peak
//     traffic — this produces the telemetry (traces + metrics) a real
//     cluster's Jaeger/Prometheus would hold.
//  2. Learn a DeepRest system from that telemetry.
//  3. Ask it how many resources a day with 2x more users would need.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	deeprest "repro"
)

func main() {
	// 1. Simulated deployment + learning-phase traffic. In production
	// these artifacts come from the cluster's telemetry stack instead.
	cluster, err := deeprest.NewCluster(deeprest.SocialNetwork(), 1)
	if err != nil {
		log.Fatal(err)
	}
	program := deeprest.UniformProgram(3, deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.5, "/uploadMedia": 0.2},
		PeakRPS: 40,
	})
	program.WindowsPerDay = 48
	program.WindowSeconds = 60
	learnTraffic := program.Generate()
	run, err := cluster.Run(learnTraffic)
	if err != nil {
		log.Fatal(err)
	}

	ts := deeprest.NewTelemetryServer(learnTraffic.WindowSeconds)
	ts.RecordRun(run)

	// 2. Application learning: pick three targets to keep the example
	// fast (omit Options.Pairs to learn every recorded pair).
	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{
		{Component: "ComposePostService", Resource: deeprest.CPU},
		{Component: "PostStorageMongoDB", Resource: deeprest.WriteIOps},
		{Component: "PostStorageMongoDB", Resource: deeprest.DiskUsage},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Mode-1 query: expected resources for one day at 2x users.
	query := deeprest.UniformProgram(1, deeprest.DaySpec{
		Shape:   deeprest.TwoPeak{},
		Mix:     deeprest.Mix{"/composePost": 0.3, "/readTimeline": 0.5, "/uploadMedia": 0.2},
		PeakRPS: 80,
	})
	query.WindowsPerDay = 48
	query.WindowSeconds = 60
	estimates, err := system.EstimateTraffic(query.Generate())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("expected resources for a day with 2x more users:")
	for _, p := range system.Pairs() {
		e := estimates[p]
		peak, mean := 0.0, 0.0
		for _, v := range e.Up {
			if v > peak {
				peak = v
			}
		}
		for _, v := range e.Exp {
			mean += v
		}
		mean /= float64(len(e.Exp))
		fmt.Printf("  %-34s mean %8.1f, allocate for peak %8.1f %s\n",
			p, mean, peak, p.Resource.Unit())
	}
}
