// Capacity planning ahead of a growth event — the paper's "unseen scales of
// application users" scenario (§5.3, Figures 14 and 17).
//
// An application owner expects 3x more users than the application has ever
// served (say, a holiday campaign) and must allocate resources in advance.
// DeepRest learned only from regular traffic; the example queries it with
// the hypothetical 3x day, then — because this is a simulation and we can —
// actually serves that traffic and compares the plan against reality and
// against naive simple scaling.
//
// Run with: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"
	"math"

	deeprest "repro"
)

const (
	learnDays = 4
	wpd       = 48
	windowSec = 60
	basePeak  = 30 // peak RPS during the learning phase
	growth    = 3  // the expected user-scale multiplier
)

func main() {
	spec := deeprest.HotelReservation()
	cluster, err := deeprest.NewCluster(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	mix := deeprest.Mix{"/search": 0.55, "/recommend": 0.24, "/reserve": 0.11, "/user": 0.10}
	day := deeprest.DaySpec{Shape: deeprest.TwoPeak{}, Mix: mix, PeakRPS: basePeak}

	program := deeprest.UniformProgram(learnDays, day)
	program.WindowsPerDay = wpd
	program.WindowSeconds = windowSec
	learnTraffic := program.Generate()
	run, err := cluster.Run(learnTraffic)
	if err != nil {
		log.Fatal(err)
	}
	ts := deeprest.NewTelemetryServer(windowSec)
	ts.RecordRun(run)

	opts := deeprest.DefaultOptions()
	opts.Pairs = []deeprest.Pair{
		{Component: "FrontendService", Resource: deeprest.CPU},
		{Component: "SearchService", Resource: deeprest.CPU},
		{Component: "ReserveMongoDB", Resource: deeprest.CPU},
		{Component: "ReserveMongoDB", Resource: deeprest.WriteIOps},
	}
	system, err := deeprest.Learn(ts, 0, ts.NumWindows(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// The hypothetical 3x day.
	qp := deeprest.UniformProgram(1, deeprest.DaySpec{Shape: deeprest.TwoPeak{}, Mix: mix, PeakRPS: basePeak * growth})
	qp.WindowsPerDay = wpd
	qp.WindowSeconds = windowSec
	qp.Seed = 99
	query := qp.Generate()

	plan, err := system.EstimateTraffic(query)
	if err != nil {
		log.Fatal(err)
	}

	// Reality check: serve the 3x day on the live cluster.
	truth, err := cluster.Run(query)
	if err != nil {
		log.Fatal(err)
	}

	// Naive plan: scale the mean learning-phase utilization by the
	// traffic growth factor (what "simple scaling" would allocate).
	fmt.Printf("capacity plan for %dx users (allocate for the peak window):\n", growth)
	fmt.Printf("  %-30s %12s %12s %12s %8s\n", "pair", "DeepRest", "naive 3x", "actual", "error")
	for _, p := range system.Pairs() {
		planned := peak(plan[p].Up)
		actual := peak(truth.Usage[p])
		naive := mean(run.Usage[p]) * growth * peakToMean(learnTraffic.TotalSeries())
		errPct := 100 * (planned - actual) / actual
		fmt.Printf("  %-30s %12.1f %12.1f %12.1f %+7.1f%%\n", p, planned, naive, actual, errPct)
	}
	fmt.Println("\nDeepRest's plan tracks the measured peak; the naive plan inherits")
	fmt.Println("the idle baseline scaled by traffic and the shape-blind mean.")
}

func peak(s []float64) float64 {
	m := 0.0
	for _, v := range s {
		m = math.Max(m, v)
	}
	return m
}

func mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t / float64(len(s))
}

// peakToMean converts a mean-based allocation to a peak-window one using the
// traffic's own peak-to-mean ratio, the best a traffic-volume-only method
// can do.
func peakToMean(total []float64) float64 {
	return peak(total) / mean(total)
}
